(* The deterministic scheduler and durable-linearizability checker.

   Three layers of coverage:
   - the Dsched engine itself on plain-OCaml scenarios: schedule
     counting and determinism, lost-update detection, deadlock
     detection, trace round-trips, PCT seed replay, shrinking;
   - the Dlin prefix-cut checker on hand-built histories;
   - the real thing: mqueue and nb_queue driven as fibers through the
     Montage runtime, bounded-exhaustively explored with a crash
     branched at every scheduling point, every recovered state checked
     against the sequential queue model — and a deliberately planted
     drop-a-flush bug in Persist_buffer caught, shrunk, and replayed
     from both the trace and the printed PCT seed. *)

module D = Dsched
module R = Nvm.Region
module E = Montage.Epoch_sys
module Cfg = Montage.Config

(* ---- engine: counter scenarios ---- *)

type counter = { mutable v : int }

(* classic lost update: read, scheduling point, write back *)
let racy_incr st =
  let x = st.v in
  Util.Sched.yield "incr";
  st.v <- x + 1

let racy_scenario n =
  {
    D.init = (fun () -> { v = 0 });
    threads = Array.make n racy_incr;
    check_crash = None;
    check_done = Some (fun st -> st.v = n);
  }

let atomic_scenario n =
  {
    D.init = (fun () -> { v = 0 });
    threads = Array.make n (fun st -> st.v <- st.v + 1);
    check_crash = None;
    check_done = Some (fun st -> st.v = n);
  }

let exhaustive ?(preemptions = 2) ?(max_attempts = 100_000) ?(crashes = true) () =
  D.Exhaustive { preemptions; max_attempts; crashes }

let test_atomic_counter_passes () =
  let r = D.explore (exhaustive ()) (atomic_scenario 3) in
  Alcotest.(check bool) "no failure" true (r.D.failure = None);
  Alcotest.(check bool) "explored more than one schedule" true (r.D.schedules > 1);
  Alcotest.(check bool) "not truncated" false r.D.truncated

let test_exhaustive_finds_lost_update () =
  match (D.explore (exhaustive ()) (racy_scenario 2)).D.failure with
  | None -> Alcotest.fail "lost update not found"
  | Some f ->
      Alcotest.(check bool) "reason mentions the check" true
        (String.length f.D.reason > 0)

let test_zero_preemptions_misses_lost_update () =
  (* without an involuntary switch each increment runs atomically *)
  let r = D.explore (exhaustive ~preemptions:0 ()) (racy_scenario 2) in
  Alcotest.(check bool) "no failure at bound 0" true (r.D.failure = None)

let test_exploration_deterministic () =
  let run () = D.explore (exhaustive ()) (racy_scenario 2) in
  let a = run () and b = run () in
  Alcotest.(check bool) "same schedules" true (a.D.schedules = b.D.schedules);
  (match (a.D.failure, b.D.failure) with
  | Some fa, Some fb ->
      Alcotest.(check string) "same shrunk trace" (D.trace_to_string fa.D.trace)
        (D.trace_to_string fb.D.trace)
  | _ -> Alcotest.fail "both runs should fail")

let test_shrunk_trace_replays () =
  match (D.explore (exhaustive ()) (racy_scenario 2)).D.failure with
  | None -> Alcotest.fail "no failure"
  | Some f ->
      Alcotest.(check bool) "shrunk no longer than raw" true
        (List.length f.D.trace <= List.length f.D.raw_trace);
      let replayed = D.explore (D.Replay f.D.trace) (racy_scenario 2) in
      Alcotest.(check bool) "replay reproduces the failure" true (replayed.D.failure <> None)

let test_deadlock_detected () =
  (* opposite-order awaits on two flags: classic wait cycle *)
  let scenario =
    {
      D.init = (fun () -> (ref false, ref false));
      threads =
        [|
          (fun (a, b) ->
            Util.Sched.await "want-b" (fun () -> !b);
            a := true);
          (fun (a, b) ->
            Util.Sched.await "want-a" (fun () -> !a);
            b := true);
        |];
      check_crash = None;
      check_done = None;
    }
  in
  match (D.explore (exhaustive ()) scenario).D.failure with
  | Some f ->
      Alcotest.(check bool) "reported as deadlock" true
        (String.length f.D.reason >= 8 && String.sub f.D.reason 0 8 = "deadlock")
  | None -> Alcotest.fail "deadlock not reported"

let test_fiber_exception_is_failure () =
  let scenario =
    {
      D.init = (fun () -> ());
      threads = [| (fun () -> Util.Sched.yield "pre"; failwith "boom") |];
      check_crash = None;
      check_done = None;
    }
  in
  match (D.explore (exhaustive ()) scenario).D.failure with
  | Some f ->
      Alcotest.(check bool) "exception surfaced" true
        (String.length f.D.reason > 0)
  | None -> Alcotest.fail "exception not reported"

let test_pct_finds_and_seed_replays () =
  let mode = D.Pct { runs = 200; seed = 42; change_points = 3 } in
  match (D.explore mode (racy_scenario 2)).D.failure with
  | None -> Alcotest.fail "PCT missed the lost update in 200 runs"
  | Some f -> (
      match f.D.seed with
      | None -> Alcotest.fail "PCT failure carries no seed"
      | Some s -> (
          let again = D.explore (D.Pct { runs = 1; seed = s; change_points = 3 }) (racy_scenario 2) in
          match again.D.failure with
          | None -> Alcotest.fail "printed seed did not reproduce"
          | Some f2 ->
              Alcotest.(check string) "identical raw schedule from the seed"
                (D.trace_to_string f.D.raw_trace)
                (D.trace_to_string f2.D.raw_trace)))

let test_trace_roundtrip () =
  let t = [ D.Run 0; D.Run 0; D.Run 1; D.Run 0; D.Crash ] in
  Alcotest.(check string) "render" "0.0.1.0.c" (D.trace_to_string t);
  Alcotest.(check bool) "parse inverts render" true (D.trace_of_string (D.trace_to_string t) = t);
  Alcotest.(check bool) "empty" true (D.trace_of_string "" = []);
  Alcotest.check_raises "garbage rejected" (Invalid_argument "Dsched.trace_of_string: bad token x")
    (fun () -> ignore (D.trace_of_string "0.x"))

let test_mode_from_env () =
  let with_env pairs f =
    (* restore prior values so a real MONTAGE_SCHED CI leg isn't
       clobbered for the tests that run after this one *)
    let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs in
    List.iter (fun (k, v) -> Unix.putenv k v) pairs;
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun (k, old) -> Unix.putenv k (Option.value old ~default:"")) saved)
      f
  in
  with_env [ ("MONTAGE_SCHED", "random"); ("MONTAGE_SCHED_RUNS", "7"); ("MONTAGE_SCHED_SEED", "9") ]
    (fun () ->
      match D.mode_from_env () with
      | Some (D.Pct { runs = 7; seed = 9; _ }) -> ()
      | _ -> Alcotest.fail "random env not parsed");
  with_env [ ("MONTAGE_SCHED", "exhaustive"); ("MONTAGE_SCHED_PREEMPTIONS", "1") ] (fun () ->
      match D.mode_from_env () with
      | Some (D.Exhaustive { preemptions = 1; _ }) -> ()
      | _ -> Alcotest.fail "exhaustive env not parsed");
  with_env [ ("MONTAGE_SCHED", "replay"); ("MONTAGE_SCHED_TRACE", "0.1.c") ] (fun () ->
      match D.mode_from_env () with
      | Some (D.Replay [ D.Run 0; D.Run 1; D.Crash ]) -> ()
      | _ -> Alcotest.fail "replay env not parsed");
  with_env [ ("MONTAGE_SCHED", "off") ] (fun () ->
      Alcotest.(check bool) "off is None" true (D.mode_from_env () = None));
  Alcotest.(check bool) "unset is None" true (D.mode_from_env () = None)

(* ---- Dlin on hand-built histories ---- *)

type qop = Enq of string | Deq

let qspec =
  {
    Dlin.initial = [];
    apply =
      (fun st op ->
        match (op, st) with
        | Enq v, _ -> (None, st @ [ v ])
        | Deq, [] -> (None, [])
        | Deq, x :: rest -> (Some x, rest));
  }

let test_dlin_accepts_buffered_drop () =
  (* enq a durable, enq b buffered: recovering [a] alone is legal *)
  let obs =
    [| { Dlin.completed = [ (Enq "a", None, true); (Enq "b", None, false) ]; in_flight = None } |]
  in
  Alcotest.(check bool) "prefix [a] accepted" true
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "a" ]));
  Alcotest.(check bool) "full history accepted too" true
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "a"; "b" ]))

let test_dlin_rejects_durable_drop () =
  let obs =
    [| { Dlin.completed = [ (Enq "a", None, true); (Enq "b", None, true) ]; in_flight = None } |]
  in
  Alcotest.(check bool) "durable b cannot vanish" false
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "a" ]))

let test_dlin_rejects_reorder_and_result_mismatch () =
  let obs =
    [| { Dlin.completed = [ (Enq "a", None, true); (Enq "b", None, true) ]; in_flight = None } |]
  in
  Alcotest.(check bool) "per-thread order preserved" false
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "b"; "a" ]));
  let wrong =
    [| { Dlin.completed = [ (Enq "a", None, true); (Deq, Some "z", true) ]; in_flight = None } |]
  in
  Alcotest.(check bool) "observed result must match the model" false
    (Dlin.durably_linearizable qspec wrong ~accept:(fun _ -> true))

let test_dlin_in_flight_optional () =
  let obs i = [| { Dlin.completed = [ (Enq "a", None, true) ]; in_flight = i } |] in
  Alcotest.(check bool) "in-flight may land" true
    (Dlin.durably_linearizable qspec (obs (Some (Enq "b"))) ~accept:(fun m -> m = [ "a"; "b" ]));
  Alcotest.(check bool) "or not" true
    (Dlin.durably_linearizable qspec (obs (Some (Enq "b"))) ~accept:(fun m -> m = [ "a" ]));
  Alcotest.(check bool) "but only after the thread's prefix" false
    (Dlin.durably_linearizable qspec (obs (Some (Enq "b"))) ~accept:(fun m -> m = [ "b"; "a" ]))

let test_dlin_interleaves_threads () =
  let obs =
    [|
      { Dlin.completed = [ (Enq "a", None, true) ]; in_flight = None };
      { Dlin.completed = [ (Enq "b", None, true) ]; in_flight = None };
    |]
  in
  Alcotest.(check bool) "a then b" true
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "a"; "b" ]));
  Alcotest.(check bool) "b then a" true
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "b"; "a" ]))

let test_linearizable_complete_run () =
  let hist = [| [ (Enq "a", None); (Deq, Some "a") ]; [ (Enq "b", None) ] |] in
  Alcotest.(check bool) "valid" true (Dlin.linearizable qspec hist ~accept:(fun m -> m = [ "b" ]));
  let bad = [| [ (Deq, Some "a") ] |] in
  Alcotest.(check bool) "deq from empty cannot return a" false
    (Dlin.linearizable qspec bad ~accept:(fun _ -> true))

(* ---- Montage scenarios: queues as fibers through the runtime ---- *)

(* Both queue flavors behind one face so the scenario builder, the
   exhaustive test, and the planted-bug test are shared. *)
type 'q queue_impl = {
  create : E.t -> 'q;
  enqueue : 'q -> tid:int -> string -> unit;
  dequeue : 'q -> tid:int -> string option;
  recover : E.t -> E.pblk array -> 'q;
}

let mqueue_impl =
  {
    create = Pstructs.Mqueue.create;
    enqueue = Pstructs.Mqueue.enqueue;
    dequeue = Pstructs.Mqueue.dequeue;
    recover = Pstructs.Mqueue.recover;
  }

let nb_queue_impl =
  {
    create = Pstructs.Nb_queue.create;
    enqueue = Pstructs.Nb_queue.enqueue;
    dequeue = Pstructs.Nb_queue.dequeue;
    recover = Pstructs.Nb_queue.recover;
  }

(* Scenario config: manual epochs, serial drain, no checker, no
   mirrors — the minimal deterministic runtime.  Recovery under the
   same knobs. *)
let sched_cfg =
  {
    Cfg.testing with
    max_threads = 2;
    pcheck = Cfg.Pcheck_off;
    drain_domains = 1;
    payload_mirror = false;
    buffer_size = 16;
  }

type 'q qstate = {
  region : R.t;
  esys : E.t;
  q : 'q;
  hist : (qop * string option * int) list ref array; (* program order, reversed *)
  inflight : qop option array;
}

let drain impl q =
  let rec go acc = match impl.dequeue q ~tid:0 with Some v -> go (v :: acc) | None -> List.rev acc in
  go []

(* Each fiber runs its op script; after every op it records (op,
   result, clock after completion) and advances the epoch once, so the
   persistence frontier moves mid-schedule and crash branches cut
   through every buffering stage. *)
let queue_scenario impl scripts =
  let n = Array.length scripts in
  {
    D.init =
      (fun () ->
        let region = R.create ~latency:Nvm.Latency.zero ~max_threads:(n + 2) ~capacity:(1 lsl 18) () in
        let esys = E.create ~config:{ sched_cfg with Cfg.max_threads = n } region in
        {
          region;
          esys;
          q = impl.create esys;
          hist = Array.init n (fun _ -> ref []);
          inflight = Array.make n None;
        });
    threads =
      Array.mapi
        (fun tid script st ->
          List.iter
            (fun op ->
              st.inflight.(tid) <- Some op;
              let res =
                match op with
                | Enq v ->
                    impl.enqueue st.q ~tid v;
                    None
                | Deq -> impl.dequeue st.q ~tid
              in
              st.hist.(tid) := (op, res, E.current_epoch st.esys) :: !(st.hist.(tid));
              st.inflight.(tid) <- None;
              E.advance_epoch st.esys ~tid)
            script)
        scripts;
    check_crash =
      Some
        (fun st ->
          R.crash st.region;
          match E.recover ~config:{ sched_cfg with Cfg.max_threads = Array.length scripts } st.region with
          | exception _ -> false
          | esys2, payloads ->
              let recovered = drain impl (impl.recover esys2 payloads) in
              (* the durable cutoff recovery applied: persisted clock - 2 *)
              let cutoff = E.current_epoch esys2 - 2 in
              let obs =
                Array.mapi
                  (fun i h ->
                    {
                      Dlin.completed =
                        List.rev_map (fun (op, res, e) -> (op, res, e <= cutoff)) !h;
                      in_flight = st.inflight.(i);
                    })
                  st.hist
              in
              Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = recovered));
    check_done =
      Some
        (fun st ->
          let remaining = drain impl st.q in
          let hists = Array.map (fun h -> List.rev_map (fun (op, res, _) -> (op, res)) !h) st.hist in
          Dlin.linearizable qspec hists ~accept:(fun m -> m = remaining));
  }

(* the acceptance-criteria script: 2 threads x 3 ops *)
let scripts = [| [ Enq "a"; Enq "b"; Deq ]; [ Enq "c"; Deq; Deq ] |]

let check_queue_report name r =
  (match r.D.failure with
  | Some f -> Alcotest.fail (name ^ ": " ^ D.failure_to_string f)
  | None -> ());
  Printf.eprintf "%s: schedules=%d crash_branches=%d max_points=%d\n%!" name r.D.schedules r.D.crash_branches r.D.max_points;
  Alcotest.(check bool) (name ^ ": schedules explored") true (r.D.schedules > 0);
  Alcotest.(check bool) (name ^ ": crash injected at every point") true
    (r.D.crash_branches >= r.D.max_points);
  Alcotest.(check bool) (name ^ ": exhausted, not truncated") false r.D.truncated

let test_mqueue_exhaustive_with_crashes () =
  let r =
    D.explore (exhaustive ~preemptions:1 ~max_attempts:100_000 ()) (queue_scenario mqueue_impl scripts)
  in
  check_queue_report "mqueue" r

let test_nb_queue_exhaustive_with_crashes () =
  let r =
    D.explore
      (exhaustive ~preemptions:1 ~max_attempts:100_000 ())
      (queue_scenario nb_queue_impl scripts)
  in
  check_queue_report "nb_queue" r

(* The planted bug: Persist_buffer.drain_all discards its first record,
   so one buffered payload never reaches media.  Durable-linearizability
   checking over crash branches must catch it, the shrunk trace must
   replay, and under PCT the printed per-run seed must reproduce it. *)
let with_planted_bug f =
  Montage.Persist_buffer.test_drop_first_drain_record := true;
  Fun.protect ~finally:(fun () -> Montage.Persist_buffer.test_drop_first_drain_record := false) f

let test_planted_bug_caught_exhaustive () =
  with_planted_bug (fun () ->
      let scenario = queue_scenario mqueue_impl scripts in
      match
        (D.explore (exhaustive ~preemptions:1 ~max_attempts:100_000 ()) scenario).D.failure
      with
      | None -> Alcotest.fail "dropped flush not caught by exhaustive exploration"
      | Some f ->
          Alcotest.(check bool) "shrunk trace provided" true (f.D.trace <> []);
          Alcotest.(check bool) "shrunk no longer than raw" true
            (List.length f.D.trace <= List.length f.D.raw_trace);
          (* the minimal trace still ends in the injected crash *)
          (match List.rev f.D.trace with
          | D.Crash :: _ -> ()
          | _ -> Alcotest.fail "planted bug should fail on a crash branch");
          let again = D.explore (D.Replay f.D.trace) scenario in
          Alcotest.(check bool) "shrunk trace replays to the same failure" true
            (again.D.failure <> None))

let test_planted_bug_caught_pct_and_seed_replays () =
  with_planted_bug (fun () ->
      let scenario = queue_scenario mqueue_impl scripts in
      match (D.explore (D.Pct { runs = 100; seed = 7; change_points = 3 }) scenario).D.failure with
      | None -> Alcotest.fail "dropped flush not caught by 100 PCT runs"
      | Some f -> (
          match f.D.seed with
          | None -> Alcotest.fail "no per-run seed on a PCT failure"
          | Some s ->
              let again =
                D.explore (D.Pct { runs = 1; seed = s; change_points = 3 }) scenario
              in
              Alcotest.(check bool) "printed seed reproduces the failure" true
                (again.D.failure <> None);
              let replayed = D.explore (D.Replay f.D.trace) scenario in
              Alcotest.(check bool) "shrunk trace replays too" true (replayed.D.failure <> None)))

(* The CI leg: MONTAGE_SCHED=random MONTAGE_SCHED_RUNS=500 runs this
   suite with a seeded PCT sweep over both queues; without the env the
   default is a modest always-on PCT pass. *)
let test_env_mode_sweep () =
  let mode =
    match D.mode_from_env () with
    | Some m -> m
    | None -> D.Pct { runs = 50; seed = 20260806; change_points = 3 }
  in
  List.iter
    (fun (name, run) ->
      match run () with
      | { D.failure = Some f; _ } -> Alcotest.fail (name ^ ": " ^ D.failure_to_string f)
      | _ -> ())
    [
      ("mqueue", fun () -> D.explore mode (queue_scenario mqueue_impl scripts));
      ("nb_queue", fun () -> D.explore mode (queue_scenario nb_queue_impl scripts));
    ]

let () =
  Alcotest.run "dsched"
    [
      ( "engine",
        [
          Alcotest.test_case "atomic counter passes" `Quick test_atomic_counter_passes;
          Alcotest.test_case "exhaustive finds lost update" `Quick test_exhaustive_finds_lost_update;
          Alcotest.test_case "preemption bound 0 misses it" `Quick
            test_zero_preemptions_misses_lost_update;
          Alcotest.test_case "exploration is deterministic" `Quick test_exploration_deterministic;
          Alcotest.test_case "shrunk trace replays" `Quick test_shrunk_trace_replays;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "fiber exception reported" `Quick test_fiber_exception_is_failure;
          Alcotest.test_case "PCT finds bug, seed replays" `Quick test_pct_finds_and_seed_replays;
          Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "mode from env" `Quick test_mode_from_env;
        ] );
      ( "dlin",
        [
          Alcotest.test_case "buffered ops may drop" `Quick test_dlin_accepts_buffered_drop;
          Alcotest.test_case "durable ops may not" `Quick test_dlin_rejects_durable_drop;
          Alcotest.test_case "order and results enforced" `Quick
            test_dlin_rejects_reorder_and_result_mismatch;
          Alcotest.test_case "in-flight optional" `Quick test_dlin_in_flight_optional;
          Alcotest.test_case "threads interleave" `Quick test_dlin_interleaves_threads;
          Alcotest.test_case "complete-run linearizability" `Quick test_linearizable_complete_run;
        ] );
      ( "montage",
        [
          Alcotest.test_case "mqueue exhaustive + crash at every point" `Quick
            test_mqueue_exhaustive_with_crashes;
          Alcotest.test_case "nb_queue exhaustive + crash at every point" `Quick
            test_nb_queue_exhaustive_with_crashes;
          Alcotest.test_case "planted flush-drop caught (exhaustive)" `Quick
            test_planted_bug_caught_exhaustive;
          Alcotest.test_case "planted flush-drop caught (PCT + seed replay)" `Quick
            test_planted_bug_caught_pct_and_seed_replays;
          Alcotest.test_case "env-selected sweep (CI leg)" `Quick test_env_mode_sweep;
        ] );
    ]
