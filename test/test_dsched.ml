(* The deterministic scheduler and durable-linearizability checker.

   Three layers of coverage:
   - the Dsched engine itself on plain-OCaml scenarios: schedule
     counting and determinism, lost-update detection, deadlock
     detection, trace round-trips, PCT seed replay, shrinking;
   - the Dlin prefix-cut checker on hand-built histories;
   - the real thing: mqueue and nb_queue driven as fibers through the
     Montage runtime, bounded-exhaustively explored with a crash
     branched at every scheduling point, every recovered state checked
     against the sequential queue model — and a deliberately planted
     drop-a-flush bug in Persist_buffer caught, shrunk, and replayed
     from both the trace and the printed PCT seed. *)

module D = Dsched
module R = Nvm.Region
module E = Montage.Epoch_sys
module Cfg = Montage.Config

(* ---- engine: counter scenarios ---- *)

type counter = { mutable v : int }

(* classic lost update: read, scheduling point, write back *)
let racy_incr st =
  let x = st.v in
  Util.Sched.yield "incr";
  st.v <- x + 1

let racy_scenario n =
  {
    D.init = (fun () -> { v = 0 });
    threads = Array.make n racy_incr;
    check_crash = None;
    check_done = Some (fun st -> st.v = n);
  }

let atomic_scenario n =
  {
    D.init = (fun () -> { v = 0 });
    threads = Array.make n (fun st -> st.v <- st.v + 1);
    check_crash = None;
    check_done = Some (fun st -> st.v = n);
  }

let exhaustive ?(preemptions = 2) ?(max_attempts = 100_000) ?(crashes = true) () =
  D.Exhaustive { preemptions; max_attempts; crashes }

let test_atomic_counter_passes () =
  let r = D.explore (exhaustive ()) (atomic_scenario 3) in
  Alcotest.(check bool) "no failure" true (r.D.failure = None);
  Alcotest.(check bool) "explored more than one schedule" true (r.D.schedules > 1);
  Alcotest.(check bool) "not truncated" false r.D.truncated

let test_exhaustive_finds_lost_update () =
  match (D.explore (exhaustive ()) (racy_scenario 2)).D.failure with
  | None -> Alcotest.fail "lost update not found"
  | Some f ->
      Alcotest.(check bool) "reason mentions the check" true
        (String.length f.D.reason > 0)

let test_zero_preemptions_misses_lost_update () =
  (* without an involuntary switch each increment runs atomically *)
  let r = D.explore (exhaustive ~preemptions:0 ()) (racy_scenario 2) in
  Alcotest.(check bool) "no failure at bound 0" true (r.D.failure = None)

let test_exploration_deterministic () =
  let run () = D.explore (exhaustive ()) (racy_scenario 2) in
  let a = run () and b = run () in
  Alcotest.(check bool) "same schedules" true (a.D.schedules = b.D.schedules);
  (match (a.D.failure, b.D.failure) with
  | Some fa, Some fb ->
      Alcotest.(check string) "same shrunk trace" (D.trace_to_string fa.D.trace)
        (D.trace_to_string fb.D.trace)
  | _ -> Alcotest.fail "both runs should fail")

let test_shrunk_trace_replays () =
  match (D.explore (exhaustive ()) (racy_scenario 2)).D.failure with
  | None -> Alcotest.fail "no failure"
  | Some f ->
      Alcotest.(check bool) "shrunk no longer than raw" true
        (List.length f.D.trace <= List.length f.D.raw_trace);
      let replayed = D.explore (D.Replay f.D.trace) (racy_scenario 2) in
      Alcotest.(check bool) "replay reproduces the failure" true (replayed.D.failure <> None)

let test_deadlock_detected () =
  (* opposite-order awaits on two flags: classic wait cycle *)
  let scenario =
    {
      D.init = (fun () -> (ref false, ref false));
      threads =
        [|
          (fun (a, b) ->
            Util.Sched.await "want-b" (fun () -> !b);
            a := true);
          (fun (a, b) ->
            Util.Sched.await "want-a" (fun () -> !a);
            b := true);
        |];
      check_crash = None;
      check_done = None;
    }
  in
  match (D.explore (exhaustive ()) scenario).D.failure with
  | Some f ->
      Alcotest.(check bool) "reported as deadlock" true
        (String.length f.D.reason >= 8 && String.sub f.D.reason 0 8 = "deadlock")
  | None -> Alcotest.fail "deadlock not reported"

let test_fiber_exception_is_failure () =
  let scenario =
    {
      D.init = (fun () -> ());
      threads = [| (fun () -> Util.Sched.yield "pre"; failwith "boom") |];
      check_crash = None;
      check_done = None;
    }
  in
  match (D.explore (exhaustive ()) scenario).D.failure with
  | Some f ->
      Alcotest.(check bool) "exception surfaced" true
        (String.length f.D.reason > 0)
  | None -> Alcotest.fail "exception not reported"

let test_pct_finds_and_seed_replays () =
  let mode = D.Pct { runs = 200; seed = 42; change_points = 3 } in
  match (D.explore mode (racy_scenario 2)).D.failure with
  | None -> Alcotest.fail "PCT missed the lost update in 200 runs"
  | Some f -> (
      match f.D.seed with
      | None -> Alcotest.fail "PCT failure carries no seed"
      | Some s -> (
          let again = D.explore (D.Pct { runs = 1; seed = s; change_points = 3 }) (racy_scenario 2) in
          match again.D.failure with
          | None -> Alcotest.fail "printed seed did not reproduce"
          | Some f2 ->
              Alcotest.(check string) "identical raw schedule from the seed"
                (D.trace_to_string f.D.raw_trace)
                (D.trace_to_string f2.D.raw_trace)))

let test_trace_roundtrip () =
  let t = [ D.Run 0; D.Run 0; D.Run 1; D.Run 0; D.Crash ] in
  Alcotest.(check string) "render" "0.0.1.0.c" (D.trace_to_string t);
  Alcotest.(check bool) "parse inverts render" true (D.trace_of_string (D.trace_to_string t) = t);
  Alcotest.(check bool) "empty" true (D.trace_of_string "" = []);
  Alcotest.check_raises "garbage rejected" (Invalid_argument "Dsched.trace_of_string: bad token x")
    (fun () -> ignore (D.trace_of_string "0.x"))

let test_mode_from_env () =
  let with_env pairs f =
    (* restore prior values so a real MONTAGE_SCHED CI leg isn't
       clobbered for the tests that run after this one *)
    let saved = List.map (fun (k, _) -> (k, Sys.getenv_opt k)) pairs in
    List.iter (fun (k, v) -> Unix.putenv k v) pairs;
    Fun.protect
      ~finally:(fun () ->
        List.iter (fun (k, old) -> Unix.putenv k (Option.value old ~default:"")) saved)
      f
  in
  with_env [ ("MONTAGE_SCHED", "random"); ("MONTAGE_SCHED_RUNS", "7"); ("MONTAGE_SCHED_SEED", "9") ]
    (fun () ->
      match D.mode_from_env () with
      | Some (D.Pct { runs = 7; seed = 9; _ }) -> ()
      | _ -> Alcotest.fail "random env not parsed");
  with_env [ ("MONTAGE_SCHED", "exhaustive"); ("MONTAGE_SCHED_PREEMPTIONS", "1") ] (fun () ->
      match D.mode_from_env () with
      | Some (D.Exhaustive { preemptions = 1; _ }) -> ()
      | _ -> Alcotest.fail "exhaustive env not parsed");
  with_env [ ("MONTAGE_SCHED", "replay"); ("MONTAGE_SCHED_TRACE", "0.1.c") ] (fun () ->
      match D.mode_from_env () with
      | Some (D.Replay [ D.Run 0; D.Run 1; D.Crash ]) -> ()
      | _ -> Alcotest.fail "replay env not parsed");
  with_env [ ("MONTAGE_SCHED", "off") ] (fun () ->
      Alcotest.(check bool) "off is None" true (D.mode_from_env () = None));
  Alcotest.(check bool) "unset is None" true (D.mode_from_env () = None)

(* ---- Dlin on hand-built histories ---- *)

type qop = Enq of string | Deq

let qspec =
  {
    Dlin.initial = [];
    apply =
      (fun st op ->
        match (op, st) with
        | Enq v, _ -> (None, st @ [ v ])
        | Deq, [] -> (None, [])
        | Deq, x :: rest -> (Some x, rest));
  }

let test_dlin_accepts_buffered_drop () =
  (* enq a durable, enq b buffered: recovering [a] alone is legal *)
  let obs =
    [| { Dlin.completed = [ (Enq "a", None, true); (Enq "b", None, false) ]; in_flight = None } |]
  in
  Alcotest.(check bool) "prefix [a] accepted" true
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "a" ]));
  Alcotest.(check bool) "full history accepted too" true
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "a"; "b" ]))

let test_dlin_rejects_durable_drop () =
  let obs =
    [| { Dlin.completed = [ (Enq "a", None, true); (Enq "b", None, true) ]; in_flight = None } |]
  in
  Alcotest.(check bool) "durable b cannot vanish" false
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "a" ]))

let test_dlin_rejects_reorder_and_result_mismatch () =
  let obs =
    [| { Dlin.completed = [ (Enq "a", None, true); (Enq "b", None, true) ]; in_flight = None } |]
  in
  Alcotest.(check bool) "per-thread order preserved" false
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "b"; "a" ]));
  let wrong =
    [| { Dlin.completed = [ (Enq "a", None, true); (Deq, Some "z", true) ]; in_flight = None } |]
  in
  Alcotest.(check bool) "observed result must match the model" false
    (Dlin.durably_linearizable qspec wrong ~accept:(fun _ -> true))

let test_dlin_in_flight_optional () =
  let obs i = [| { Dlin.completed = [ (Enq "a", None, true) ]; in_flight = i } |] in
  Alcotest.(check bool) "in-flight may land" true
    (Dlin.durably_linearizable qspec (obs (Some (Enq "b"))) ~accept:(fun m -> m = [ "a"; "b" ]));
  Alcotest.(check bool) "or not" true
    (Dlin.durably_linearizable qspec (obs (Some (Enq "b"))) ~accept:(fun m -> m = [ "a" ]));
  Alcotest.(check bool) "but only after the thread's prefix" false
    (Dlin.durably_linearizable qspec (obs (Some (Enq "b"))) ~accept:(fun m -> m = [ "b"; "a" ]))

let test_dlin_interleaves_threads () =
  let obs =
    [|
      { Dlin.completed = [ (Enq "a", None, true) ]; in_flight = None };
      { Dlin.completed = [ (Enq "b", None, true) ]; in_flight = None };
    |]
  in
  Alcotest.(check bool) "a then b" true
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "a"; "b" ]));
  Alcotest.(check bool) "b then a" true
    (Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = [ "b"; "a" ]))

let test_linearizable_complete_run () =
  let hist = [| [ (Enq "a", None); (Deq, Some "a") ]; [ (Enq "b", None) ] |] in
  Alcotest.(check bool) "valid" true (Dlin.linearizable qspec hist ~accept:(fun m -> m = [ "b" ]));
  let bad = [| [ (Deq, Some "a") ] |] in
  Alcotest.(check bool) "deq from empty cannot return a" false
    (Dlin.linearizable qspec bad ~accept:(fun _ -> true))

(* ---- Montage scenarios: queues as fibers through the runtime ---- *)

(* Both queue flavors behind one face so the scenario builder, the
   exhaustive test, and the planted-bug test are shared. *)
type 'q queue_impl = {
  create : E.t -> 'q;
  enqueue : 'q -> tid:int -> string -> unit;
  dequeue : 'q -> tid:int -> string option;
  recover : E.t -> E.pblk array -> 'q;
}

let mqueue_impl =
  {
    create = Pstructs.Mqueue.create;
    enqueue = Pstructs.Mqueue.enqueue;
    dequeue = Pstructs.Mqueue.dequeue;
    recover = Pstructs.Mqueue.recover;
  }

let nb_queue_impl =
  {
    create = Pstructs.Nb_queue.create;
    enqueue = Pstructs.Nb_queue.enqueue;
    dequeue = Pstructs.Nb_queue.dequeue;
    recover = Pstructs.Nb_queue.recover;
  }

(* Scenario config: manual epochs, serial drain, no checker, no
   mirrors — the minimal deterministic runtime.  Recovery under the
   same knobs.  [nb_advance] is inherited from the environment so the
   CI matrix legs (MONTAGE_NB_ADVANCE=1/0) sweep the shared scenarios
   over both advance arms; arm-specific tests pin it explicitly. *)
let sched_cfg =
  {
    Cfg.testing with
    max_threads = 2;
    pcheck = Cfg.Pcheck_off;
    drain_domains = 1;
    payload_mirror = false;
    buffer_size = 16;
  }

(* Arm-pinned variants: the planted drain-record bug lives in the
   blocking arm's [drain_all] path, the planted publish bug in the
   nonblocking arm's [publish] path — each must be explored on the arm
   that actually executes its code regardless of the CI leg's env. *)
let blocking_cfg = { sched_cfg with Cfg.nb_advance = false }
let nb_cfg = { sched_cfg with Cfg.nb_advance = true }

type 'q qstate = {
  region : R.t;
  esys : E.t;
  q : 'q;
  hist : (qop * string option * int) list ref array; (* program order, reversed *)
  inflight : qop option array;
}

let drain impl q =
  let rec go acc = match impl.dequeue q ~tid:0 with Some v -> go (v :: acc) | None -> List.rev acc in
  go []

(* Each fiber runs its op script; after every op it records (op,
   result, clock after completion) and advances the epoch once, so the
   persistence frontier moves mid-schedule and crash branches cut
   through every buffering stage.  [helpers] appends extra fibers that
   only advance the epoch (twice each): with the nonblocking arm they
   race the op threads' advances and each other through the helping
   protocol, so exploration preempts a writer mid-publication with two
   helpers live — the nbMontage racing-helper case. *)
let queue_scenario ?(cfg = sched_cfg) ?(helpers = 0) impl scripts =
  let n = Array.length scripts in
  let total = n + helpers in
  let op_threads =
    Array.mapi
      (fun tid script st ->
        List.iter
          (fun op ->
            st.inflight.(tid) <- Some op;
            let res =
              match op with
              | Enq v ->
                  impl.enqueue st.q ~tid v;
                  None
              | Deq -> impl.dequeue st.q ~tid
            in
            st.hist.(tid) := (op, res, E.current_epoch st.esys) :: !(st.hist.(tid));
            st.inflight.(tid) <- None;
            E.advance_epoch st.esys ~tid)
          script)
      scripts
  in
  let helper_threads =
    Array.init helpers (fun i st ->
        let tid = n + i in
        E.advance_epoch st.esys ~tid;
        E.advance_epoch st.esys ~tid)
  in
  {
    D.init =
      (fun () ->
        let region =
          R.create ~latency:Nvm.Latency.zero ~max_threads:(total + 2) ~capacity:(1 lsl 18) ()
        in
        let esys = E.create ~config:{ cfg with Cfg.max_threads = total } region in
        {
          region;
          esys;
          q = impl.create esys;
          hist = Array.init n (fun _ -> ref []);
          inflight = Array.make n None;
        });
    threads = Array.append op_threads helper_threads;
    check_crash =
      Some
        (fun st ->
          R.crash st.region;
          match E.recover ~config:{ cfg with Cfg.max_threads = total } st.region with
          | exception _ -> false
          | esys2, payloads ->
              let recovered = drain impl (impl.recover esys2 payloads) in
              (* the durable cutoff recovery applied: persisted clock - 2 *)
              let cutoff = E.current_epoch esys2 - 2 in
              let obs =
                Array.mapi
                  (fun i h ->
                    {
                      Dlin.completed =
                        List.rev_map (fun (op, res, e) -> (op, res, e <= cutoff)) !h;
                      in_flight = st.inflight.(i);
                    })
                  st.hist
              in
              Dlin.durably_linearizable qspec obs ~accept:(fun m -> m = recovered));
    check_done =
      Some
        (fun st ->
          let remaining = drain impl st.q in
          let hists = Array.map (fun h -> List.rev_map (fun (op, res, _) -> (op, res)) !h) st.hist in
          Dlin.linearizable qspec hists ~accept:(fun m -> m = remaining));
  }

(* the acceptance-criteria script: 2 threads x 3 ops *)
let scripts = [| [ Enq "a"; Enq "b"; Deq ]; [ Enq "c"; Deq; Deq ] |]

let check_queue_report name r =
  (match r.D.failure with
  | Some f -> Alcotest.fail (name ^ ": " ^ D.failure_to_string f)
  | None -> ());
  Printf.eprintf "%s: schedules=%d crash_branches=%d max_points=%d\n%!" name r.D.schedules r.D.crash_branches r.D.max_points;
  Alcotest.(check bool) (name ^ ": schedules explored") true (r.D.schedules > 0);
  Alcotest.(check bool) (name ^ ": crash injected at every point") true
    (r.D.crash_branches >= r.D.max_points);
  Alcotest.(check bool) (name ^ ": exhausted, not truncated") false r.D.truncated

let test_mqueue_exhaustive_with_crashes () =
  let r =
    D.explore (exhaustive ~preemptions:1 ~max_attempts:100_000 ()) (queue_scenario mqueue_impl scripts)
  in
  check_queue_report "mqueue" r

let test_nb_queue_exhaustive_with_crashes () =
  let r =
    D.explore
      (exhaustive ~preemptions:1 ~max_attempts:100_000 ())
      (queue_scenario nb_queue_impl scripts)
  in
  check_queue_report "nb_queue" r

(* The planted bugs: the blocking arm's [Persist_buffer.drain_all]
   discards its first record, the nonblocking arm's
   [Persist_buffer.publish] skips its first record but still returns
   the stop index past it (so [retire_upto] throws it away unflushed) —
   either way one buffered payload never reaches media.
   Durable-linearizability checking over crash branches must catch it
   on the arm that runs the planted path, the shrunk trace must replay,
   and under PCT the printed per-run seed must reproduce it. *)
let with_planted_bug flag f =
  flag := true;
  Fun.protect ~finally:(fun () -> flag := false) f

let planted_caught_exhaustive ~flag ~cfg () =
  with_planted_bug flag (fun () ->
      let scenario = queue_scenario ~cfg mqueue_impl scripts in
      match
        (D.explore (exhaustive ~preemptions:1 ~max_attempts:100_000 ()) scenario).D.failure
      with
      | None -> Alcotest.fail "dropped flush not caught by exhaustive exploration"
      | Some f ->
          Alcotest.(check bool) "shrunk trace provided" true (f.D.trace <> []);
          Alcotest.(check bool) "shrunk no longer than raw" true
            (List.length f.D.trace <= List.length f.D.raw_trace);
          (* the minimal trace still ends in the injected crash *)
          (match List.rev f.D.trace with
          | D.Crash :: _ -> ()
          | _ -> Alcotest.fail "planted bug should fail on a crash branch");
          let again = D.explore (D.Replay f.D.trace) scenario in
          Alcotest.(check bool) "shrunk trace replays to the same failure" true
            (again.D.failure <> None))

let planted_caught_pct_and_seed_replays ~flag ~cfg () =
  with_planted_bug flag (fun () ->
      let scenario = queue_scenario ~cfg mqueue_impl scripts in
      match (D.explore (D.Pct { runs = 100; seed = 7; change_points = 3 }) scenario).D.failure with
      | None -> Alcotest.fail "dropped flush not caught by 100 PCT runs"
      | Some f -> (
          match f.D.seed with
          | None -> Alcotest.fail "no per-run seed on a PCT failure"
          | Some s ->
              let again =
                D.explore (D.Pct { runs = 1; seed = s; change_points = 3 }) scenario
              in
              Alcotest.(check bool) "printed seed reproduces the failure" true
                (again.D.failure <> None);
              let replayed = D.explore (D.Replay f.D.trace) scenario in
              Alcotest.(check bool) "shrunk trace replays too" true (replayed.D.failure <> None)))

let test_planted_bug_caught_exhaustive =
  planted_caught_exhaustive ~flag:Montage.Persist_buffer.test_drop_first_drain_record
    ~cfg:blocking_cfg

let test_planted_bug_caught_pct_and_seed_replays =
  planted_caught_pct_and_seed_replays ~flag:Montage.Persist_buffer.test_drop_first_drain_record
    ~cfg:blocking_cfg

let test_planted_publish_bug_caught_exhaustive =
  planted_caught_exhaustive ~flag:Montage.Persist_buffer.test_drop_first_publish_record ~cfg:nb_cfg

let test_planted_publish_bug_caught_pct_and_seed_replays =
  planted_caught_pct_and_seed_replays ~flag:Montage.Persist_buffer.test_drop_first_publish_record
    ~cfg:nb_cfg

(* ---- nonblocking advance: racing helpers ---- *)

(* One writer through a 4-slot ring (every other enqueue overflows into
   a mid-op publication) with two helper fibers advancing concurrently:
   exploration preempts the writer between publishing and retiring
   while both helpers run the same tick's helping protocol, and a crash
   is branched at every scheduling point.  Durable linearizability must
   hold at every recovered state. *)
let racing_cfg = { nb_cfg with Cfg.buffer_size = 4 }
let racing_scripts = [| [ Enq "a"; Enq "b"; Enq "c"; Deq ] |]

let test_racing_helpers_exhaustive () =
  let r =
    D.explore
      (exhaustive ~preemptions:1 ~max_attempts:400_000 ())
      (queue_scenario ~cfg:racing_cfg ~helpers:2 mqueue_impl racing_scripts)
  in
  check_queue_report "nb-racing-helpers" r

let test_racing_helpers_pct () =
  let r =
    D.explore
      (D.Pct { runs = 300; seed = 11; change_points = 3 })
      (queue_scenario ~cfg:racing_cfg ~helpers:2 mqueue_impl racing_scripts)
  in
  match r.D.failure with
  | Some f -> Alcotest.fail ("nb-racing-helpers-pct: " ^ D.failure_to_string f)
  | None -> Alcotest.(check bool) "schedules explored" true (r.D.schedules > 0)

(* ---- wait-freedom: a stalled peer cannot block advance or sync ---- *)

(* Harness: [arm ()] primes the next drain-window stall; the parked
   fiber raises [stalled] and waits for [released].  Arm/consume runs
   on the victim's own fiber with no scheduling point in between other
   fibers could use, so only the victim parks. *)
type stall_rig = {
  arm : unit -> unit;
  stalled : bool ref;
  released : bool ref;
}

let with_stall_rig f =
  let armed = ref false and stalled = ref false and released = ref false in
  E.test_stall_in_drain :=
    (fun () ->
      if !armed then begin
        armed := false;
        stalled := true;
        Util.Sched.await "test.stall" (fun () -> !released)
      end);
  Fun.protect
    ~finally:(fun () -> E.test_stall_in_drain := (fun () -> ()))
    (fun () -> f { arm = (fun () -> armed := true); stalled; released })

(* Writer parked mid-drain *inside an open op* (the overflow
   publication of its third pnew, records collected but not yet
   fenced); the peer performs one full epoch advance and only then
   releases the writer.  Nonblocking arm: the advance claims and
   flushes the parked writer's records itself and completes — the
   schedule runs to the end.  Blocking arm: the advance spins on the
   writer's [draining] flag while the writer waits for [released] —
   Dsched must report the wait cycle as a deadlock. *)
let stalled_writer_scenario rig cfg =
  let cfg = { cfg with Cfg.max_threads = 2; buffer_size = 2; coalesce_writebacks = true } in
  {
    D.init =
      (fun () ->
        let region = R.create ~latency:Nvm.Latency.zero ~max_threads:4 ~capacity:(1 lsl 18) () in
        rig.stalled := false;
        rig.released := false;
        E.create ~config:cfg region);
    threads =
      [|
        (fun esys ->
          E.begin_op esys ~tid:0;
          ignore (E.pnew esys ~tid:0 (Bytes.make 16 'a'));
          ignore (E.pnew esys ~tid:0 (Bytes.make 16 'b'));
          rig.arm ();
          (* third record overflows the 2-slot ring: the drain parks
             under the hook with both records still unfenced *)
          ignore (E.pnew esys ~tid:0 (Bytes.make 16 'c'));
          E.end_op esys ~tid:0);
        (fun esys ->
          Util.Sched.await "helper.sees-stall" (fun () -> !(rig.stalled));
          E.advance_epoch esys ~tid:1;
          rig.released := true);
      |];
    check_crash = None;
    check_done = Some (fun esys -> E.advance_count esys = 1);
  }

let test_nb_advance_completes_past_stalled_writer () =
  with_stall_rig (fun rig ->
      let r =
        D.explore
          (exhaustive ~preemptions:2 ~max_attempts:100_000 ~crashes:false ())
          (stalled_writer_scenario rig nb_cfg)
      in
      (match r.D.failure with
      | Some f -> Alcotest.fail ("nb advance stalled: " ^ D.failure_to_string f)
      | None -> ());
      Alcotest.(check bool) "schedules explored" true (r.D.schedules > 0))

let test_blocking_advance_stalls_on_stalled_writer () =
  with_stall_rig (fun rig ->
      match
        (D.explore
           (exhaustive ~preemptions:2 ~max_attempts:100_000 ~crashes:false ())
           (stalled_writer_scenario rig blocking_cfg))
          .D.failure
      with
      | Some f ->
          Alcotest.(check bool)
            ("blocking arm should deadlock, got: " ^ f.D.reason)
            true
            (String.length f.D.reason >= 8 && String.sub f.D.reason 0 8 = "deadlock")
      | None -> Alcotest.fail "blocking advance did not stall on the parked drain")

(* Sync wait-freedom: the victim completes its op and parks inside its
   END_OP drain (records published, not yet fenced).  Under the
   nonblocking arm the victim has already unregistered, so a peer's
   [sync] never waits on it — it claims the victim's records, performs
   both ticks, and the durable frontier covers the victim's completed
   op.  Under the blocking arm END_OP drains before unregistering while
   holding [draining], so the same schedule is a deadlock. *)
let stalled_end_op_scenario rig cfg =
  let cfg =
    { cfg with Cfg.max_threads = 2; buffer_size = 16; coalesce_writebacks = true;
      drain_on_end_op = true }
  in
  let op_epoch = ref 0 in
  {
    D.init =
      (fun () ->
        let region = R.create ~latency:Nvm.Latency.zero ~max_threads:4 ~capacity:(1 lsl 18) () in
        rig.stalled := false;
        rig.released := false;
        op_epoch := 0;
        E.create ~config:cfg region);
    threads =
      [|
        (fun esys ->
          E.begin_op esys ~tid:0;
          ignore (E.pnew esys ~tid:0 (Bytes.make 16 'x'));
          op_epoch := E.op_epoch esys ~tid:0;
          rig.arm ();
          E.end_op esys ~tid:0);
        (fun esys ->
          Util.Sched.await "syncer.sees-stall" (fun () -> !(rig.stalled));
          E.sync esys ~tid:1;
          rig.released := true);
      |];
    check_crash = None;
    check_done =
      Some
        (fun esys ->
          (* both ticks ran and the frontier covers the victim's
             completed op even though the victim never fenced it *)
          E.advance_count esys = 2 && E.persisted_epoch esys >= !op_epoch);
  }

let test_nb_sync_wait_free_past_stalled_end_op () =
  with_stall_rig (fun rig ->
      let r =
        D.explore
          (exhaustive ~preemptions:2 ~max_attempts:100_000 ~crashes:false ())
          (stalled_end_op_scenario rig nb_cfg)
      in
      (match r.D.failure with
      | Some f -> Alcotest.fail ("nb sync stalled: " ^ D.failure_to_string f)
      | None -> ());
      Alcotest.(check bool) "schedules explored" true (r.D.schedules > 0))

let test_blocking_sync_stalls_on_stalled_end_op () =
  with_stall_rig (fun rig ->
      match
        (D.explore
           (exhaustive ~preemptions:2 ~max_attempts:100_000 ~crashes:false ())
           (stalled_end_op_scenario rig blocking_cfg))
          .D.failure
      with
      | Some f ->
          Alcotest.(check bool)
            ("blocking arm should deadlock, got: " ^ f.D.reason)
            true
            (String.length f.D.reason >= 8 && String.sub f.D.reason 0 8 = "deadlock")
      | None -> Alcotest.fail "blocking sync did not stall on the parked END_OP drain")

(* ---- Workers-mode reclamation: the scrub-window stall ---- *)

(* +LocalFree reclamation runs inside BEGIN_OP, and its hazard is the
   scrub barrier in [reclaim_ripe]: the ripe plain victims' scrubs have
   been issued but not fenced, and the anti-payloads masking deleted
   victims are not yet scrubbed.  A reclaimer parked in that window
   (via [E.test_stall_in_reclaim]) models a stalled worker; a crash
   there must never resurrect a superseded version ("a" -> "1") or an
   anti-masked victim ("b" -> "2") once the overwrite/delete is
   durable.  Thread 0 builds ripe garbage of both kinds — a pset
   supersession and a pdelete anti — then its next op's local reclaim
   parks under the hook; thread 1 advances the clock once over the
   parked reclaimer and releases it.  Crash branched at every
   scheduling point, every recovered map checked against the
   sequential model. *)

type mop = Mput of string * string | Mdel of string

let mspec =
  {
    Dlin.initial = [];
    apply =
      (fun st op ->
        match op with
        | Mput (k, v) -> (List.assoc_opt k st, (k, v) :: List.remove_assoc k st)
        | Mdel k -> (List.assoc_opt k st, List.remove_assoc k st));
  }

type mstate = {
  mregion : R.t;
  mesys : E.t;
  map : Pstructs.Mhashmap.t;
  mhist : (mop * string option * int) list ref;
  minflight : mop option ref;
}

let workers_cfg = { sched_cfg with Cfg.reclaim = Cfg.Workers }

let scrub_window_scenario ~armed ~stalled ~released () =
  (* result recorded with the clock after completion, as in
     [queue_scenario]; the op call is an argument, so it completes
     before [record] reads the clock *)
  let record st op res =
    st.mhist := (op, res, E.current_epoch st.mesys) :: !(st.mhist);
    st.minflight := None
  in
  let put st k v =
    st.minflight := Some (Mput (k, v));
    record st (Mput (k, v)) (Pstructs.Mhashmap.put st.map ~tid:0 k v)
  in
  let del st k =
    st.minflight := Some (Mdel k);
    record st (Mdel k) (Pstructs.Mhashmap.remove st.map ~tid:0 k)
  in
  {
    D.init =
      (fun () ->
        armed := false;
        stalled := false;
        released := false;
        let region = R.create ~latency:Nvm.Latency.zero ~max_threads:4 ~capacity:(1 lsl 18) () in
        let esys = E.create ~config:workers_cfg region in
        {
          mregion = region;
          mesys = esys;
          map = Pstructs.Mhashmap.create esys;
          mhist = ref [];
          minflight = ref None;
        });
    threads =
      [|
        (fun st ->
          put st "a" "1";
          put st "b" "2";
          E.advance_epoch st.mesys ~tid:0;
          put st "a" "3";
          (* supersession: the old "a" version is deferred plain garbage *)
          del st "b";
          (* pdelete: anti-payload published, victim + anti deferred *)
          E.advance_epoch st.mesys ~tid:0;
          E.advance_epoch st.mesys ~tid:0;
          (* the epoch-tagged garbage is now ripe; this op's BEGIN_OP
             reclaim parks in the scrub window *)
          armed := true;
          put st "c" "4");
        (fun st ->
          Util.Sched.await "helper.sees-stall" (fun () -> !stalled);
          E.advance_epoch st.mesys ~tid:1;
          released := true);
      |];
    check_crash =
      Some
        (fun st ->
          R.crash st.mregion;
          match E.recover ~config:workers_cfg st.mregion with
          | exception _ -> false
          | esys2, payloads ->
              let recovered =
                List.sort compare
                  (Pstructs.Mhashmap.to_alist (Pstructs.Mhashmap.recover esys2 payloads) ~tid:0)
              in
              let cutoff = E.current_epoch esys2 - 2 in
              let obs =
                [|
                  {
                    Dlin.completed =
                      List.rev_map (fun (op, res, e) -> (op, res, e <= cutoff)) !(st.mhist);
                    in_flight = !(st.minflight);
                  };
                |]
              in
              Dlin.durably_linearizable mspec obs ~accept:(fun m ->
                  List.sort compare m = recovered));
    check_done =
      Some
        (fun st ->
          let final = List.sort compare (Pstructs.Mhashmap.to_alist st.map ~tid:0) in
          let hist = [| List.rev_map (fun (op, res, _) -> (op, res)) !(st.mhist) |] in
          final = [ ("a", "3"); ("c", "4") ]
          && Dlin.linearizable mspec hist ~accept:(fun m -> List.sort compare m = final));
  }

let test_workers_scrub_window_stall () =
  let armed = ref false and stalled = ref false and released = ref false in
  E.test_stall_in_reclaim :=
    (fun () ->
      if !armed then begin
        armed := false;
        stalled := true;
        Util.Sched.await "test.reclaim-stall" (fun () -> !released)
      end);
  Fun.protect
    ~finally:(fun () -> E.test_stall_in_reclaim := (fun () -> ()))
    (fun () ->
      let r =
        D.explore
          (exhaustive ~preemptions:1 ~max_attempts:200_000 ())
          (scrub_window_scenario ~armed ~stalled ~released ())
      in
      (match r.D.failure with
      | Some f -> Alcotest.fail ("scrub window: " ^ D.failure_to_string f)
      | None -> ());
      Printf.eprintf "scrub-window: schedules=%d crash_branches=%d max_points=%d\n%!" r.D.schedules
        r.D.crash_branches r.D.max_points;
      Alcotest.(check bool) "schedules explored" true (r.D.schedules > 0);
      Alcotest.(check bool) "crash injected at every point" true
        (r.D.crash_branches >= r.D.max_points);
      Alcotest.(check bool) "exhausted, not truncated" false r.D.truncated)

(* The CI leg: MONTAGE_SCHED=random MONTAGE_SCHED_RUNS=500 runs this
   suite with a seeded PCT sweep over both queues; without the env the
   default is a modest always-on PCT pass. *)
let test_env_mode_sweep () =
  let mode =
    match D.mode_from_env () with
    | Some m -> m
    | None -> D.Pct { runs = 50; seed = 20260806; change_points = 3 }
  in
  List.iter
    (fun (name, run) ->
      match run () with
      | { D.failure = Some f; _ } -> Alcotest.fail (name ^ ": " ^ D.failure_to_string f)
      | _ -> ())
    [
      ("mqueue", fun () -> D.explore mode (queue_scenario mqueue_impl scripts));
      ("nb_queue", fun () -> D.explore mode (queue_scenario nb_queue_impl scripts));
    ]

let () =
  Alcotest.run "dsched"
    [
      ( "engine",
        [
          Alcotest.test_case "atomic counter passes" `Quick test_atomic_counter_passes;
          Alcotest.test_case "exhaustive finds lost update" `Quick test_exhaustive_finds_lost_update;
          Alcotest.test_case "preemption bound 0 misses it" `Quick
            test_zero_preemptions_misses_lost_update;
          Alcotest.test_case "exploration is deterministic" `Quick test_exploration_deterministic;
          Alcotest.test_case "shrunk trace replays" `Quick test_shrunk_trace_replays;
          Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
          Alcotest.test_case "fiber exception reported" `Quick test_fiber_exception_is_failure;
          Alcotest.test_case "PCT finds bug, seed replays" `Quick test_pct_finds_and_seed_replays;
          Alcotest.test_case "trace roundtrip" `Quick test_trace_roundtrip;
          Alcotest.test_case "mode from env" `Quick test_mode_from_env;
        ] );
      ( "dlin",
        [
          Alcotest.test_case "buffered ops may drop" `Quick test_dlin_accepts_buffered_drop;
          Alcotest.test_case "durable ops may not" `Quick test_dlin_rejects_durable_drop;
          Alcotest.test_case "order and results enforced" `Quick
            test_dlin_rejects_reorder_and_result_mismatch;
          Alcotest.test_case "in-flight optional" `Quick test_dlin_in_flight_optional;
          Alcotest.test_case "threads interleave" `Quick test_dlin_interleaves_threads;
          Alcotest.test_case "complete-run linearizability" `Quick test_linearizable_complete_run;
        ] );
      ( "montage",
        [
          Alcotest.test_case "mqueue exhaustive + crash at every point" `Quick
            test_mqueue_exhaustive_with_crashes;
          Alcotest.test_case "nb_queue exhaustive + crash at every point" `Quick
            test_nb_queue_exhaustive_with_crashes;
          Alcotest.test_case "planted flush-drop caught (exhaustive)" `Quick
            test_planted_bug_caught_exhaustive;
          Alcotest.test_case "planted flush-drop caught (PCT + seed replay)" `Quick
            test_planted_bug_caught_pct_and_seed_replays;
          Alcotest.test_case "env-selected sweep (CI leg)" `Quick test_env_mode_sweep;
        ] );
      ( "nb-advance",
        [
          Alcotest.test_case "racing helpers exhaustive + crash at every point" `Quick
            test_racing_helpers_exhaustive;
          Alcotest.test_case "racing helpers PCT" `Quick test_racing_helpers_pct;
          Alcotest.test_case "planted publish-drop caught (exhaustive)" `Quick
            test_planted_publish_bug_caught_exhaustive;
          Alcotest.test_case "planted publish-drop caught (PCT + seed replay)" `Quick
            test_planted_publish_bug_caught_pct_and_seed_replays;
          Alcotest.test_case "nb advance completes past stalled writer" `Quick
            test_nb_advance_completes_past_stalled_writer;
          Alcotest.test_case "blocking advance stalls on stalled writer" `Quick
            test_blocking_advance_stalls_on_stalled_writer;
          Alcotest.test_case "nb sync wait-free past stalled END_OP" `Quick
            test_nb_sync_wait_free_past_stalled_end_op;
          Alcotest.test_case "blocking sync stalls on stalled END_OP" `Quick
            test_blocking_sync_stalls_on_stalled_end_op;
        ] );
      ( "workers-reclaim",
        [
          Alcotest.test_case "scrub-window stall + crash at every point" `Quick
            test_workers_scrub_window_stall;
        ] );
    ]
