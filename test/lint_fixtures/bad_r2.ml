[@@@montage.scope "r2"]

(* R2 known-bad: atomics touched by bindings that give the
   deterministic scheduler nothing to interleave.  Expected findings:
   the get in [read] and the incr in [bump]. *)

let counter = Atomic.make 0
let read () = Atomic.get counter
let bump () = Atomic.incr counter
