[@@@montage.scope "r3"]

(* R3 known-bad: payload handles squirreled away in module-level
   state, outliving the operation that obtained them.  Expected
   findings: the ref store in [stash] and the Hashtbl store in
   [remember]. *)

let cache : Montage.Epoch_sys.pblk option ref = ref None
let table : (int, Montage.Epoch_sys.pblk) Hashtbl.t = Hashtbl.create 8
let stash p = cache := Some p
let remember k p = Hashtbl.replace table k p
