[@@@montage.scope "r1"]

(* R1 known-clean: every write is either under a with-lock combinator,
   in a binding that acquires the lock itself, or on state annotated
   as thread-local.  Expected findings: none. *)

type counter = {
  lock : Util.Spin_lock.t;
  mutable count : int;
  mutable scratch : int [@montage.thread_local];
}

let shared = { lock = Util.Spin_lock.create (); count = 0; scratch = 0 }
let bump () = Util.Spin_lock.with_lock shared.lock (fun () -> shared.count <- shared.count + 1)

let bump_manual () =
  Util.Spin_lock.acquire shared.lock;
  shared.count <- shared.count + 1;
  Util.Spin_lock.release shared.lock

let note x = shared.scratch <- x
let local_ref x =
  let r = ref 0 in
  r := x;
  !r
