[@@@montage.scope "r5"]

(* R5 known-bad: blocking calls outside the netserve event loop.
   Expected findings: the sleep in [nap], the lock in [hold], and the
   readiness wait in [spin] (a local [Poller.wait] matches the
   module-suffix rule exactly like [Netserve.Poller.wait] does). *)

let nap () = Unix.sleepf 0.01
let guard = Mutex.create ()

let hold () =
  Mutex.lock guard;
  Mutex.unlock guard

module Poller = struct
  let wait ~timeout_s = ignore timeout_s
end

let spin () = Poller.wait ~timeout_s:0.05
