[@@@montage.scope "r5"]

(* R5 known-bad: blocking calls outside the netserve event loop.
   Expected findings: the sleep in [nap] and the lock in [hold]. *)

let nap () = Unix.sleepf 0.01
let guard = Mutex.create ()

let hold () =
  Mutex.lock guard;
  Mutex.unlock guard
