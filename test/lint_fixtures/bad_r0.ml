[@@@montage.scope "r4"]

(* R0 known-bad: suppressions without a justification are themselves
   findings — and a malformed allow grants nothing, so the failwith it
   pretends to cover is still reported.  Expected findings: one R0 for
   the payload missing its "Rn: why" shape, and the R4 underneath. *)

let sloppy () = failwith "covered?" [@montage.allow "no rule prefix here"]
