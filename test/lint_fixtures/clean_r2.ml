[@@@montage.scope "r2"]

(* R2 known-clean: the hot binding carries a Sched point; the observer
   carries a justified suppression.  Expected findings: none. *)

let counter = Atomic.make 0

let bump () =
  Util.Sched.yield "fixture.bump";
  Atomic.incr counter

let read () = Atomic.get counter
[@@montage.allow "R2: read-only observer used by the fixture tests"]
