[@@@montage.scope "r1"]

(* R1 known-bad: module-level mutable state written with no lock in
   sight.  Expected findings: the field write in [bump] and the ref
   write in [tick]. *)

type counter = { mutable count : int }

let shared = { count = 0 }
let total = ref 0
let bump () = shared.count <- shared.count + 1
let tick () = total := !total + 1
