[@@@montage.scope "r4"]

(* R4 known-bad: invariant violations that die without saying which
   invariant.  Expected findings: the assert false in [unreachable]
   and the failwith in [explode]. *)

let unreachable () = assert false
let explode () = failwith "boom"
