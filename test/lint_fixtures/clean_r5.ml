[@@@montage.scope "r5"]

(* R5 known-clean: non-blocking Unix use is fine, and a justified
   suppression covers the one deliberate sleep.  Expected findings:
   none. *)

let now () = Unix.gettimeofday ()

let paced_wait () =
  Unix.sleepf 0.01
  [@montage.allow "R5: fixture models a driver-thread pacing sleep"]

module Poller = struct
  let wait ~timeout_s = ignore timeout_s
end

let readiness_tick () =
  Poller.wait ~timeout_s:0.05
  [@montage.allow "R5: fixture models a client-tooling readiness wait"]
