[@@@montage.scope "r3"]

(* R3 known-clean: handles flow through calls and local state only.
   Expected findings: none. *)

let use p f = f p

let swap_local p q =
  let slot = ref p in
  slot := q;
  !slot

let sizes : (int, int) Hashtbl.t = Hashtbl.create 8
let note_size k n = Hashtbl.replace sizes k n
