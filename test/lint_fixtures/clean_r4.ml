[@@@montage.scope "r4"]

(* R4 known-clean: failures carry types or messages.  Asserting a
   real predicate is fine — only [assert false] is flagged.  Expected
   findings: none. *)

exception Fixture_error of string

let checked x =
  assert (x >= 0);
  x

let reject reason = raise (Fixture_error reason)
let bad_arg () = invalid_arg "clean_r4: not a capacity bound"
