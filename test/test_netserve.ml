(* Loopback end-to-end tests for the netserve TCP front end: real
   sockets against a Montage-backed store on an ephemeral port.
   Covers concurrent pipelined clients across the sharded workers, the
   wire-visible stats counters, the load generator's closed loop, the
   protocol size caps over a socket, and the acceptance property the
   shutdown-drain ordering exists for: every reply acked as STORED
   before a graceful shutdown survives a crash of the region. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config

let testing_cfg workers = { Cfg.testing with max_threads = workers + 1 }

let buckets = 256

(* A Montage-backed server on port 0 with a fast poll tick.  Returns
   the region/esys so tests can crash and recover the image.  [poller]
   pins the readiness backend; omitted, the env default rules. *)
let start_montage ?(workers = 4) ?nb ?poller ?(config_mod = fun c -> c) () =
  let ecfg = testing_cfg workers in
  (* [nb] pins the epoch-advance arm; omitted, the env default rules
     (the CI matrix covers both via MONTAGE_NB_ADVANCE) *)
  let ecfg = match nb with None -> ecfg | Some nb -> { ecfg with Cfg.nb_advance = nb } in
  let region =
    Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:(workers + 4)
      ~capacity:(1 lsl 25) ()
  in
  let esys = E.create ~config:ecfg region in
  let map = Pstructs.Mhashmap.create ~buckets esys in
  let store = Kvstore.Store.create (Kvstore.Store.of_mhashmap map) in
  let config =
    config_mod { Netserve.default_config with port = 0; workers; tick_s = 0.01; poller }
  in
  let t =
    Netserve.start ~config
      ~sync:(fun ~tid -> E.sync esys ~tid)
      ~persisted_epoch:(fun () -> E.persisted_epoch esys)
      store
  in
  (region, esys, t)

(* ---- blocking client helpers ---- *)

let connect port =
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
  Unix.connect fd (ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd SO_RCVTIMEO 10.0;
  fd

let send fd s =
  let off = ref 0 in
  let n = String.length s in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let recv_exact fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  (try
     while !off < n do
       let k = Unix.read fd buf !off (n - !off) in
       if k = 0 then raise Exit;
       off := !off + k
     done
   with Exit -> ());
  Bytes.sub_string buf 0 !off

let recv_until fd suffix =
  let acc = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let ends_with () =
    let s = Buffer.contents acc in
    String.length s >= String.length suffix
    && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix
  in
  (try
     while not (ends_with ()) do
       let k = Unix.read fd chunk 0 (Bytes.length chunk) in
       if k = 0 then raise Exit;
       Buffer.add_subbytes acc chunk 0 k
     done
   with Exit -> ());
  Buffer.contents acc

let quit_close fd =
  (try send fd "quit\r\n" with _ -> ());
  try Unix.close fd with _ -> ()

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

(* ---- concurrent pipelined clients ---- *)

let test_concurrent_pipelined_clients () =
  let region, esys, t = start_montage () in
  let port = Netserve.port t in
  let clients = 6 and batches = 10 and per_batch = 8 in
  (* each client pipelines [per_batch] set+get pairs per write and
     checks the replies byte-exactly, on its own key prefix *)
  let run_client cid =
    let fd = connect port in
    let ok = ref true in
    for b = 0 to batches - 1 do
      let out = Buffer.create 512 and expect = Buffer.create 512 in
      for i = 0 to per_batch - 1 do
        let key = Printf.sprintf "c%d-%d-%d" cid b i in
        let v = Printf.sprintf "v%d.%d.%d" cid b i in
        Buffer.add_string out (Printf.sprintf "set %s 0 0 %d\r\n%s\r\nget %s\r\n" key (String.length v) v key);
        Buffer.add_string expect
          (Printf.sprintf "STORED\r\nVALUE %s 0 %d\r\n%s\r\nEND\r\n" key (String.length v) v)
      done;
      send fd (Buffer.contents out);
      let want = Buffer.contents expect in
      let got = recv_exact fd (String.length want) in
      if got <> want then ok := false
    done;
    quit_close fd;
    !ok
  in
  let doms = Array.init clients (fun cid -> Domain.spawn (fun () -> run_client cid)) in
  let oks = Array.map Domain.join doms in
  Array.iteri
    (fun cid ok -> Alcotest.(check bool) (Printf.sprintf "client %d byte-exact" cid) true ok)
    oks;
  let d = Netserve.shutdown t in
  Alcotest.(check int) "graceful drain, no forced closes" 0 d.Netserve.forced_closes;
  let accepted, _, _, cmds = Netserve.totals t in
  Alcotest.(check int) "every client connection accepted" clients accepted;
  Alcotest.(check int) "every command dispatched" (clients * batches * per_batch * 2 + clients) cmds;
  E.stop_background esys;
  ignore region

(* ---- wire-visible stats ---- *)

let test_stats_over_wire () =
  let region, esys, t = start_montage () in
  let port = Netserve.port t in
  let fd = connect port in
  send fd "set s1 0 0 2\r\nhi\r\nget s1\r\nget s1 s1\r\n";
  let expect = "STORED\r\nVALUE s1 0 2\r\nhi\r\nEND\r\nVALUE s1 0 2\r\nhi\r\nVALUE s1 0 2\r\nhi\r\nEND\r\n" in
  Alcotest.(check string) "session replies" expect (recv_exact fd (String.length expect));
  send fd "stats\r\n";
  let stats = recv_until fd "END\r\n" in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "stats carries %S" needle) true (contains stats needle))
    [
      "STAT threads 4";
      "STAT cmd_set 1";
      "STAT cmd_get 2";
      "STAT total_connections 1";
      "STAT curr_connections 1";
      "STAT max_pipeline_depth ";
      "STAT bytes_read ";
      "STAT bytes_written ";
      "STAT worker0_accepted ";
      (* store-level section still present alongside the server's *)
      "STAT get_hits 3";
    ];
  quit_close fd;
  let d = Netserve.shutdown t in
  Alcotest.(check int) "drained" 0 d.Netserve.forced_closes;
  E.stop_background esys;
  ignore region

(* ---- protocol size caps over a real socket ---- *)

let test_caps_over_wire () =
  let region, esys, t =
    start_montage ~workers:2 ~config_mod:(fun c -> { c with Netserve.max_value = 64; max_line = 128 }) ()
  in
  let port = Netserve.port t in
  let fd = connect port in
  send fd (Printf.sprintf "set big 0 0 4096\r\n%s\r\nget alive\r\n" (String.make 4096 'z'));
  let expect = "CLIENT_ERROR object too large for cache\r\nEND\r\n" in
  Alcotest.(check string) "oversized block refused, framing intact" expect
    (recv_exact fd (String.length expect));
  send fd (Printf.sprintf "get %s\r\nget alive\r\n" (String.make 500 'k'));
  let expect2 = "CLIENT_ERROR line too long\r\nEND\r\n" in
  Alcotest.(check string) "oversized line refused, framing intact" expect2
    (recv_exact fd (String.length expect2));
  quit_close fd;
  ignore (Netserve.shutdown t);
  E.stop_background esys;
  ignore region

(* ---- the load generator's closed loop (>= 4 workers) ---- *)

let test_loadgen_throughput () =
  let region, esys, t = start_montage ~workers:4 () in
  let port = Netserve.port t in
  let lg =
    {
      Netserve.Loadgen.default_config with
      port;
      conns = 8;
      domains = 2;
      duration_s = 0.4;
      pipeline = 8;
      keyspace = 400;
      value_size = 32;
      key_prefix = "lgt";
    }
  in
  Netserve.Loadgen.preload ~config:lg ();
  let r = Netserve.Loadgen.run ~config:lg () in
  Alcotest.(check bool) "non-zero throughput" true (r.Netserve.Loadgen.ops > 0);
  Alcotest.(check bool) "ops/s positive" true (r.Netserve.Loadgen.ops_per_sec > 0.0);
  Alcotest.(check int) "error-free" 0 r.Netserve.Loadgen.errors;
  Alcotest.(check bool) "hit path exercised" true (r.Netserve.Loadgen.hits > 0);
  Alcotest.(check bool) "percentiles ordered" true
    (r.Netserve.Loadgen.p50_us <= r.Netserve.Loadgen.p95_us
    && r.Netserve.Loadgen.p95_us <= r.Netserve.Loadgen.p99_us
    && r.Netserve.Loadgen.p99_us > 0.0);
  let d = Netserve.shutdown t in
  Alcotest.(check int) "loadgen connections drained" 0 d.Netserve.forced_closes;
  E.stop_background esys;
  ignore region

(* ---- readiness backends: select vs epoll ---- *)

let kinds =
  (Netserve.Poller.Select, "select")
  :: (if Netserve.Poller.epoll_available then [ (Netserve.Poller.Epoll, "epoll") ] else [])

(* The same pipelined session, dribbled one byte at a time, must
   produce byte-identical replies whichever backend drives the loop:
   dispatch, value framing, multi-get, delete, the error path, version
   and quit are poller-independent, and so is read-boundary placement. *)
let parity_session kind =
  let region, esys, t = start_montage ~workers:2 ~poller:kind () in
  Alcotest.(check bool) "requested poller in effect" true (Netserve.poller_kind t = kind);
  let fd = connect (Netserve.port t) in
  let script =
    "set pk1 0 0 5\r\nhello\r\nset pk2 0 0 3\r\nxyz\r\nget pk1 pk2\r\ndelete pk2\r\n\
     get pk2\r\nbogus\r\nversion\r\nquit\r\n"
  in
  String.iter (fun c -> send fd (String.make 1 c)) script;
  (* quit closes the connection after the last reply flushes: read to EOF *)
  let acc = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  (try
     let rec loop () =
       let k = Unix.read fd chunk 0 (Bytes.length chunk) in
       if k > 0 then begin
         Buffer.add_subbytes acc chunk 0 k;
         loop ()
       end
     in
     loop ()
   with Unix.Unix_error _ -> ());
  (try Unix.close fd with _ -> ());
  let d = Netserve.shutdown t in
  Alcotest.(check int) (Netserve.Poller.kind_name kind ^ " drained") 0 d.Netserve.forced_closes;
  E.stop_background esys;
  ignore region;
  Buffer.contents acc

let test_backend_parity () =
  match List.map (fun (k, name) -> (name, parity_session k)) kinds with
  | [] -> ()
  | (_, first) :: rest ->
      Alcotest.(check bool) "acks present" true (contains first "STORED");
      Alcotest.(check bool) "values present" true (contains first "VALUE pk1 0 5");
      Alcotest.(check bool) "delete acked" true (contains first "DELETED");
      Alcotest.(check bool) "error path present" true (contains first "ERROR");
      Alcotest.(check bool) "version answered" true (contains first "VERSION");
      List.iter
        (fun (name, r) ->
          Alcotest.(check string) (name ^ " replies byte-identical to select") first r)
        rest

(* idle connections are reaped by the periodic sweep, not per tick *)
let test_idle_reap kind () =
  let region, esys, t =
    start_montage ~workers:2 ~poller:kind
      ~config_mod:(fun c -> { c with Netserve.idle_timeout_s = 0.2 }) ()
  in
  let fd = connect (Netserve.port t) in
  send fd "set ir 0 0 1\r\nx\r\n";
  Alcotest.(check string) "stored" "STORED\r\n" (recv_exact fd 8);
  (* no further traffic: the sweep must close the connection from the
     server side, surfacing as EOF here *)
  Unix.setsockopt_float fd SO_RCVTIMEO 5.0;
  let eof = try Unix.read fd (Bytes.create 1) 0 1 = 0 with Unix.Unix_error _ -> false in
  Alcotest.(check bool) "idle connection reaped (EOF)" true eof;
  (try Unix.close fd with _ -> ());
  ignore (Netserve.shutdown t);
  E.stop_background esys;
  ignore region

(* a burst of pipelined replies far past out_hwm must pause reads, not
   drop or reorder output: every reply arrives byte-exact *)
let test_out_hwm_backpressure kind () =
  let region, esys, t =
    start_montage ~workers:1 ~poller:kind
      ~config_mod:(fun c -> { c with Netserve.out_hwm = 2048 }) ()
  in
  let fd = connect (Netserve.port t) in
  let v = String.make 512 'b' in
  send fd (Printf.sprintf "set bp 0 0 %d\r\n%s\r\n" (String.length v) v);
  Alcotest.(check string) "stored" "STORED\r\n" (recv_exact fd 8);
  let n = 400 in
  let out = Buffer.create (n * 8) in
  for _ = 1 to n do
    Buffer.add_string out "get bp\r\n"
  done;
  (* ~215 KB of replies against a 2 KB high-water mark *)
  send fd (Buffer.contents out);
  let one = Printf.sprintf "VALUE bp 0 %d\r\n%s\r\nEND\r\n" (String.length v) v in
  let want = String.concat "" (List.init n (fun _ -> one)) in
  let got = recv_exact fd (String.length want) in
  Alcotest.(check bool) "all replies byte-exact under backpressure" true (got = want);
  quit_close fd;
  let d = Netserve.shutdown t in
  Alcotest.(check int) "drained" 0 d.Netserve.forced_closes;
  E.stop_background esys;
  ignore region

(* a shutdown with a connection still open keeps serving it until the
   client quits, and the drain reports no forced closes *)
let test_drain_serves_inflight kind () =
  let region, esys, t = start_montage ~workers:2 ~poller:kind () in
  let fd = connect (Netserve.port t) in
  send fd "set dk 0 0 2\r\nok\r\n";
  Alcotest.(check string) "stored" "STORED\r\n" (recv_exact fd 8);
  let dom = Domain.spawn (fun () -> Netserve.shutdown t) in
  Unix.sleepf 0.1;
  send fd "get dk\r\nquit\r\n";
  let expect = "VALUE dk 0 2\r\nok\r\nEND\r\n" in
  Alcotest.(check string) "served during drain" expect (recv_exact fd (String.length expect));
  (try Unix.close fd with _ -> ());
  let d = Domain.join dom in
  Alcotest.(check int) "graceful: no forced closes" 0 d.Netserve.forced_closes;
  E.stop_background esys;
  ignore region

(* ---- acked STORED keys survive shutdown + crash ---- *)

let test_acked_keys_survive_crash ~nb ?poller () =
  let region, esys, t = start_montage ~nb ?poller () in
  let port = Netserve.port t in
  let clients = 4 and keys_per_client = 25 in
  let run_client cid =
    let fd = connect port in
    let out = Buffer.create 1024 in
    for i = 0 to keys_per_client - 1 do
      Buffer.add_string out (Printf.sprintf "set dur%d-%02d 0 0 6\r\nv%d.%03d\r\n" cid i cid i)
    done;
    send fd (Buffer.contents out);
    (* read all acks: only count a key as acked if STORED came back *)
    let want = String.concat "" (List.init keys_per_client (fun _ -> "STORED\r\n")) in
    let got = recv_exact fd (String.length want) in
    quit_close fd;
    got = want
  in
  let doms = Array.init clients (fun cid -> Domain.spawn (fun () -> run_client cid)) in
  let all_acked = Array.for_all Fun.id (Array.map Domain.join doms) in
  Alcotest.(check bool) "every set acked STORED" true all_acked;
  (* the shutdown drain syncs from the acceptor's tid alone: the
     durable frontier must cover every epoch acks were issued in
     without joining or waking the (now idle) worker threads *)
  let pre_shutdown_epoch = E.current_epoch esys in
  let d = Netserve.shutdown t in
  Alcotest.(check bool)
    (Printf.sprintf "frontier %d covers pre-shutdown epoch %d" d.Netserve.persisted_epoch
       pre_shutdown_epoch)
    true
    (d.Netserve.persisted_epoch >= pre_shutdown_epoch);
  E.stop_background esys;
  (* power failure after the graceful shutdown *)
  Nvm.Region.crash region;
  let esys2, payloads =
    E.recover ~config:{ (testing_cfg 4) with Cfg.nb_advance = nb } region
  in
  let map2 = Pstructs.Mhashmap.recover ~buckets esys2 payloads in
  let store2 = Kvstore.Store.create (Kvstore.Store.of_mhashmap map2) in
  let missing = ref [] in
  for cid = 0 to clients - 1 do
    for i = 0 to keys_per_client - 1 do
      let key = Printf.sprintf "dur%d-%02d" cid i in
      match Kvstore.Store.get store2 ~tid:0 key with
      | Some v when v = Printf.sprintf "v%d.%03d" cid i -> ()
      | _ -> missing := key :: !missing
    done
  done;
  Alcotest.(check (list string)) "every acked key recovered with its value" [] !missing;
  E.stop_background esys2

(* ---- mhamt backend: snapshot isolation through the socket path ---- *)

(* The acceptance criterion, end to end: phase A lands over real
   sockets (two connections, every set acked), a snapshot is taken,
   then two client domains overwrite every key through the server
   while the test thread folds the view over and over — every fold
   must see exactly the phase-A state.  After the writers drain, the
   shutdown syncs, the region crashes, and the recovered mhamt must
   serve the last acked values back over a fresh server. *)
let test_mhamt_snapshot_through_sockets () =
  let workers = 2 in
  let ecfg = testing_cfg workers in
  let region =
    Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:(workers + 4) ~capacity:(1 lsl 25) ()
  in
  let esys = E.create ~config:ecfg region in
  let map = Pstructs.Mhamt.create esys in
  let store = Kvstore.Store.create (Kvstore.Store.of_mhamt map) in
  let config = { Netserve.default_config with port = 0; workers; tick_s = 0.01; poller = None } in
  let t =
    Netserve.start ~config
      ~sync:(fun ~tid -> E.sync esys ~tid)
      ~persisted_epoch:(fun () -> E.persisted_epoch esys)
      store
  in
  let port = Netserve.port t in
  let keys = 32 in
  let key i = Printf.sprintf "key%03d" i in
  let phase_a d =
    let fd = connect port in
    let ok = ref true in
    for i = 0 to (keys / 2) - 1 do
      let k = (d * keys / 2) + i in
      let v = "A" ^ string_of_int k in
      send fd (Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" (key k) (String.length v) v);
      if recv_exact fd 8 <> "STORED\r\n" then ok := false
    done;
    quit_close fd;
    !ok
  in
  let a_doms = Array.init 2 (fun d -> Domain.spawn (fun () -> phase_a d)) in
  let a_ok = Array.for_all Fun.id (Array.map Domain.join a_doms) in
  Alcotest.(check bool) "phase A fully acked" true a_ok;
  let v = Pstructs.Mhamt.snapshot map in
  let writers_done = Atomic.make 0 in
  let phase_b d =
    let fd = connect port in
    let ok = ref true in
    for round = 0 to 9 do
      for i = 0 to keys - 1 do
        let value = Printf.sprintf "B%d:%d:%d" d round i in
        send fd (Printf.sprintf "set %s 0 0 %d\r\n%s\r\n" (key i) (String.length value) value);
        if recv_exact fd 8 <> "STORED\r\n" then ok := false
      done
    done;
    quit_close fd;
    Atomic.incr writers_done;
    !ok
  in
  let b_doms = Array.init 2 (fun d -> Domain.spawn (fun () -> phase_b d)) in
  (* fold the frozen view while both writers hammer the same keys
     through the server *)
  let view_tid = workers in
  (* map values carry the store's item header (flags/expiry/cas); the
     client data is the tail *)
  let data_is (k, value) =
    let expect = "A" ^ string_of_int (int_of_string (String.sub k 3 3)) in
    let n = String.length expect in
    String.length value >= n && String.sub value (String.length value - n) n = expect
  in
  let folds = ref 0 and clean = ref true in
  while Atomic.get writers_done < 2 || !folds = 0 do
    let seen = Pstructs.Mhamt.View.fold v ~tid:view_tid (fun acc k value -> (k, value) :: acc) [] in
    if List.length seen <> keys || not (List.for_all data_is seen) then clean := false;
    incr folds
  done;
  let b_ok = Array.for_all Fun.id (Array.map Domain.join b_doms) in
  Alcotest.(check bool) "phase B fully acked" true b_ok;
  Alcotest.(check bool) "view folds ran during the writes" true (!folds > 0);
  Alcotest.(check bool) "every fold saw exactly the pre-snapshot state" true !clean;
  Pstructs.Mhamt.release map v ~tid:view_tid;
  (* current state moved on: read one key back over the wire *)
  let fd = connect port in
  send fd (Printf.sprintf "get %s\r\n" (key 0));
  let reply = recv_until fd "END\r\n" in
  quit_close fd;
  Alcotest.(check bool) "current value is a phase-B write" true (contains reply "B");
  let d = Netserve.shutdown t in
  Alcotest.(check int) "graceful drain" 0 d.Netserve.forced_closes;
  E.stop_background esys;
  (* power failure; the recovered map serves acked values over a fresh
     server *)
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:ecfg region in
  let map2 = Pstructs.Mhamt.recover esys2 payloads in
  Alcotest.(check int) "all keys recovered" keys (Pstructs.Mhamt.size map2);
  let store2 = Kvstore.Store.create (Kvstore.Store.of_mhamt map2) in
  let t2 =
    Netserve.start
      ~config:{ Netserve.default_config with port = 0; workers; tick_s = 0.01; poller = None }
      ~sync:(fun ~tid -> E.sync esys2 ~tid)
      ~persisted_epoch:(fun () -> E.persisted_epoch esys2)
      store2
  in
  let fd = connect (Netserve.port t2) in
  send fd (Printf.sprintf "get %s\r\n" (key 5));
  let reply = recv_until fd "END\r\n" in
  quit_close fd;
  Alcotest.(check bool) "recovered value served over the wire" true (contains reply "B");
  ignore (Netserve.shutdown t2);
  E.stop_background esys2

(* ---- shutdown is idempotent and syncs once ---- *)

let test_shutdown_idempotent () =
  let region, esys, t = start_montage ~workers:2 () in
  let fd = connect (Netserve.port t) in
  send fd "set k 0 0 1\r\nv\r\n";
  Alcotest.(check string) "stored" "STORED\r\n" (recv_exact fd 8);
  quit_close fd;
  let d1 = Netserve.shutdown t in
  let d2 = Netserve.shutdown t in
  Alcotest.(check bool) "second shutdown returns the first drain" true (d1 = d2);
  E.stop_background esys;
  ignore region

let () =
  Alcotest.run "netserve"
    [
      ( "loopback",
        [
          Alcotest.test_case "concurrent pipelined clients" `Quick test_concurrent_pipelined_clients;
          Alcotest.test_case "stats over the wire" `Quick test_stats_over_wire;
          Alcotest.test_case "size caps over the wire" `Quick test_caps_over_wire;
          Alcotest.test_case "loadgen closed loop (4 workers)" `Quick test_loadgen_throughput;
        ] );
      ( "backends",
        Alcotest.test_case "reply parity across pollers (byte-dribbled pipeline)" `Quick
          test_backend_parity
        :: List.concat_map
             (fun (k, name) ->
               [
                 Alcotest.test_case (name ^ ": idle connections reaped") `Quick
                   (test_idle_reap k);
                 Alcotest.test_case (name ^ ": out_hwm backpressure keeps replies exact") `Quick
                   (test_out_hwm_backpressure k);
                 Alcotest.test_case (name ^ ": drain serves in-flight connections") `Quick
                   (test_drain_serves_inflight k);
               ])
             kinds );
      ( "durability",
        List.map
          (fun (k, name) ->
            Alcotest.test_case
              (Printf.sprintf "acked keys survive shutdown + crash (%s poller)" name)
              `Quick
              (test_acked_keys_survive_crash ~nb:true ~poller:k))
          kinds
        @ [
            Alcotest.test_case "acked keys survive shutdown + crash (nb advance)" `Quick
              (test_acked_keys_survive_crash ~nb:true);
            Alcotest.test_case "acked keys survive shutdown + crash (blocking advance)" `Quick
              (test_acked_keys_survive_crash ~nb:false);
            Alcotest.test_case "shutdown idempotent" `Quick test_shutdown_idempotent;
          ] );
      ( "mhamt backend",
        [
          Alcotest.test_case "snapshot isolation through the socket path" `Quick
            test_mhamt_snapshot_through_sockets;
        ] );
    ]
