(* Tests for the memcached text-protocol codec: command parsing, data
   blocks, pipelining, noreply, binary safety, and a full crash/recover
   session through the wire format. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config
module Store = Kvstore.Store
module P = Kvstore.Protocol

let testing_cfg = { Cfg.testing with max_threads = 4 }

let make_store () =
  let map = Baselines.Transient_map.create ~buckets:64 Baselines.Transient_map.Dram in
  Store.create (Store.of_transient_map map)

let make_conn ?max_line ?max_value () =
  P.create ?max_line ?max_value (make_store ()) ~tid:0

let feed_all c s = String.concat "" (P.feed c s)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let test_set_get_roundtrip () =
  let c = make_conn () in
  Alcotest.(check string) "set stored" "STORED\r\n" (feed_all c "set greeting 7 0 5\r\nhello\r\n");
  Alcotest.(check string) "get value" "VALUE greeting 7 5\r\nhello\r\nEND\r\n"
    (feed_all c "get greeting\r\n");
  Alcotest.(check string) "get miss" "END\r\n" (feed_all c "get nothing\r\n")

let test_multi_key_get () =
  let c = make_conn () in
  ignore (feed_all c "set a 0 0 1\r\nA\r\n");
  ignore (feed_all c "set b 0 0 1\r\nB\r\n");
  Alcotest.(check string) "both values, misses skipped"
    "VALUE a 0 1\r\nA\r\nVALUE b 0 1\r\nB\r\nEND\r\n"
    (feed_all c "get a missing b\r\n")

let test_add_replace_semantics () =
  let c = make_conn () in
  Alcotest.(check string) "add new" "STORED\r\n" (feed_all c "add k 0 0 2\r\nv1\r\n");
  Alcotest.(check string) "add existing" "NOT_STORED\r\n" (feed_all c "add k 0 0 2\r\nv2\r\n");
  Alcotest.(check string) "replace existing" "STORED\r\n" (feed_all c "replace k 0 0 2\r\nv3\r\n");
  Alcotest.(check string) "replace missing" "NOT_STORED\r\n" (feed_all c "replace nope 0 0 1\r\nx\r\n")

let test_append_prepend () =
  let c = make_conn () in
  ignore (feed_all c "set k 0 0 3\r\nmid\r\n");
  Alcotest.(check string) "append" "STORED\r\n" (feed_all c "append k 0 0 4\r\n-end\r\n");
  Alcotest.(check string) "prepend" "STORED\r\n" (feed_all c "prepend k 0 0 4\r\npre-\r\n");
  Alcotest.(check string) "combined" "VALUE k 0 11\r\npre-mid-end\r\nEND\r\n" (feed_all c "get k\r\n");
  Alcotest.(check string) "append missing" "NOT_STORED\r\n" (feed_all c "append nope 0 0 1\r\nx\r\n")

let test_delete () =
  let c = make_conn () in
  ignore (feed_all c "set k 0 0 1\r\nv\r\n");
  Alcotest.(check string) "delete" "DELETED\r\n" (feed_all c "delete k\r\n");
  Alcotest.(check string) "delete again" "NOT_FOUND\r\n" (feed_all c "delete k\r\n")

let test_incr_decr () =
  let c = make_conn () in
  ignore (feed_all c "set n 0 0 2\r\n10\r\n");
  Alcotest.(check string) "incr" "15\r\n" (feed_all c "incr n 5\r\n");
  Alcotest.(check string) "decr" "0\r\n" (feed_all c "decr n 100\r\n");
  Alcotest.(check string) "incr missing" "NOT_FOUND\r\n" (feed_all c "incr nope 1\r\n");
  Alcotest.(check string) "bad delta" "CLIENT_ERROR invalid numeric delta argument\r\n"
    (feed_all c "incr n abc\r\n")

let test_cas () =
  let c = make_conn () in
  ignore (feed_all c "set k 0 0 2\r\nv1\r\n");
  let reply = feed_all c "gets k\r\n" in
  (* extract the cas id from "VALUE k 0 2 <cas>" *)
  let cas = Scanf.sscanf reply "VALUE k 0 2 %d" (fun c -> c) in
  Alcotest.(check string) "cas match" "STORED\r\n"
    (feed_all c (Printf.sprintf "cas k 0 0 2 %d\r\nv2\r\n" cas));
  Alcotest.(check string) "cas stale" "EXISTS\r\n"
    (feed_all c (Printf.sprintf "cas k 0 0 2 %d\r\nv3\r\n" cas));
  Alcotest.(check string) "cas missing" "NOT_FOUND\r\n" (feed_all c "cas nope 0 0 1 7\r\nx\r\n")

let test_binary_safe_data () =
  let c = make_conn () in
  (* the value contains \r\n: length-delimited framing must handle it *)
  let payload = "a\r\nb\r\nc" in
  Alcotest.(check string) "stored" "STORED\r\n"
    (feed_all c (Printf.sprintf "set bin 0 0 %d\r\n%s\r\n" (String.length payload) payload));
  Alcotest.(check string) "read back"
    (Printf.sprintf "VALUE bin 0 %d\r\n%s\r\nEND\r\n" (String.length payload) payload)
    (feed_all c "get bin\r\n")

let test_chunked_arrival () =
  (* one command delivered byte-by-byte across many feeds *)
  let c = make_conn () in
  let input = "set slow 0 0 4\r\ndata\r\nget slow\r\n" in
  let replies = ref [] in
  String.iter (fun ch -> replies := !replies @ P.feed c (String.make 1 ch)) input;
  Alcotest.(check string) "both replies, correct order" "STORED\r\nVALUE slow 0 4\r\ndata\r\nEND\r\n"
    (String.concat "" !replies)

let test_pipelining () =
  let c = make_conn () in
  let replies =
    P.feed c "set a 0 0 1\r\nX\r\nset b 0 0 1\r\nY\r\nget a b\r\ndelete a\r\n"
  in
  Alcotest.(check (list string)) "four replies in order"
    [ "STORED\r\n"; "STORED\r\n"; "VALUE a 0 1\r\nX\r\nVALUE b 0 1\r\nY\r\nEND\r\n"; "DELETED\r\n" ]
    replies

let test_noreply () =
  let c = make_conn () in
  Alcotest.(check (list string)) "silent set" [] (P.feed c "set k 0 0 1 noreply\r\nv\r\n");
  Alcotest.(check string) "it landed" "VALUE k 0 1\r\nv\r\nEND\r\n" (feed_all c "get k\r\n");
  Alcotest.(check (list string)) "silent delete" [] (P.feed c "delete k noreply\r\n")

let test_errors () =
  let c = make_conn () in
  Alcotest.(check string) "unknown command" "ERROR\r\n" (feed_all c "frobnicate\r\n");
  Alcotest.(check string) "bad storage args" "CLIENT_ERROR bad command line format\r\n"
    (feed_all c "set onlykey\r\n");
  Alcotest.(check string) "bad data terminator" "CLIENT_ERROR bad data chunk\r\n"
    (feed_all c "set k 0 0 2\r\nvvX\r")

let test_quit_closes () =
  let c = make_conn () in
  Alcotest.(check (list string)) "no reply to quit" [] (P.feed c "quit\r\n");
  Alcotest.(check bool) "closed" true (P.is_closed c);
  Alcotest.(check (list string)) "ignores further input" [] (P.feed c "get k\r\n")

let test_stats_and_version () =
  let c = make_conn () in
  ignore (feed_all c "set k 0 0 1\r\nv\r\n");
  ignore (feed_all c "get k\r\n");
  ignore (feed_all c "get miss\r\n");
  let stats = feed_all c "stats\r\n" in
  Alcotest.(check bool) "hit counted" true (contains stats "STAT get_hits 1");
  Alcotest.(check bool) "miss counted" true (contains stats "STAT get_misses 1");
  Alcotest.(check bool) "version" true (contains (feed_all c "version\r\n") "VERSION")

let test_protocol_over_montage_with_crash () =
  (* a full wire-protocol session against the persistent store, across
     a crash: acknowledged (synced) data must answer identically *)
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 24) () in
  let esys = E.create ~config:testing_cfg region in
  let map = Pstructs.Mhashmap.create ~buckets:256 esys in
  let store = Store.create (Store.of_mhashmap map) in
  let c = P.create store ~tid:0 in
  ignore (feed_all c "set user:1 0 0 5\r\nalice\r\n");
  ignore (feed_all c "set hits 0 0 1\r\n0\r\n");
  ignore (feed_all c "incr hits 41\r\n");
  E.sync esys ~tid:0;
  ignore (feed_all c "set user:2 0 0 3\r\nbob\r\n");
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let map2 = Pstructs.Mhashmap.recover ~buckets:256 esys2 payloads in
  let store2 = Store.create (Store.of_mhashmap map2) in
  let c2 = P.create store2 ~tid:0 in
  Alcotest.(check string) "synced value over the wire" "VALUE user:1 0 5\r\nalice\r\nEND\r\n"
    (feed_all c2 "get user:1\r\n");
  Alcotest.(check string) "counter durable" "41\r\n" (feed_all c2 "incr hits 0\r\n");
  Alcotest.(check string) "unsynced lost" "END\r\n" (feed_all c2 "get user:2\r\n")

(* ---- flush_all ---- *)

let test_flush_all_wipes () =
  let c = make_conn () in
  ignore (feed_all c "set a 0 0 1\r\nA\r\nset b 0 0 1\r\nB\r\n");
  Alcotest.(check string) "flush acked" "OK\r\n" (feed_all c "flush_all\r\n");
  Alcotest.(check string) "everything gone" "END\r\n" (feed_all c "get a b\r\n");
  Alcotest.(check string) "later set lands" "STORED\r\n" (feed_all c "set c 0 0 1\r\nC\r\n");
  Alcotest.(check string) "and is visible" "VALUE c 0 1\r\nC\r\nEND\r\n" (feed_all c "get c\r\n");
  Alcotest.(check string) "conditional ops see the wipe" "NOT_STORED\r\n"
    (feed_all c "replace a 0 0 1\r\nX\r\n")

let test_flush_all_delay () =
  let store = make_store () in
  let now = ref 1000.0 in
  Store.set_clock store (fun () -> !now);
  let c = P.create store ~tid:0 in
  ignore (feed_all c "set k 0 0 1\r\nv\r\n");
  Alcotest.(check string) "delayed flush acked" "OK\r\n" (feed_all c "flush_all 30\r\n");
  Alcotest.(check string) "still visible before the deadline" "VALUE k 0 1\r\nv\r\nEND\r\n"
    (feed_all c "get k\r\n");
  now := 1031.0;
  Alcotest.(check string) "gone after the deadline" "END\r\n" (feed_all c "get k\r\n");
  let _, _, _, _, expired = Store.stats store in
  Alcotest.(check int) "lazy reap counted as expired" 1 expired;
  Alcotest.(check string) "bad delay rejected" "CLIENT_ERROR invalid delay argument\r\n"
    (feed_all c "flush_all -3\r\n")

let test_flush_all_noreply () =
  let c = make_conn () in
  ignore (feed_all c "set a 0 0 1\r\nA\r\n");
  Alcotest.(check (list string)) "silent flush" [] (P.feed c "flush_all noreply\r\n");
  Alcotest.(check string) "it happened" "END\r\n" (feed_all c "get a\r\n")

(* ---- size caps ---- *)

let test_line_cap () =
  let c = make_conn ~max_line:64 () in
  let long_key = String.make 200 'k' in
  Alcotest.(check string) "oversized line rejected" "CLIENT_ERROR line too long\r\n"
    (feed_all c (Printf.sprintf "get %s\r\n" long_key));
  Alcotest.(check string) "stream resyncs on the next command" "END\r\n" (feed_all c "get a\r\n")

let test_line_cap_streaming () =
  (* the oversized line arrives in drips: the error must fire once the
     cap is provably blown (bounded buffering), and the skip state must
     swallow the rest of the line without touching later commands *)
  let c = make_conn ~max_line:32 () in
  let replies = ref [] in
  let push s = replies := !replies @ P.feed c s in
  String.iter (fun ch -> push (String.make 1 ch)) ("get " ^ String.make 100 'x');
  Alcotest.(check string) "error emitted mid-line, before the terminator"
    "CLIENT_ERROR line too long\r\n" (String.concat "" !replies);
  replies := [];
  push "xxx\r\n";
  Alcotest.(check string) "tail of the long line swallowed silently" "" (String.concat "" !replies);
  Alcotest.(check string) "next command parses" "END\r\n" (feed_all c "get a\r\n")

let test_value_cap () =
  let c = make_conn ~max_value:16 () in
  Alcotest.(check string) "oversized block refused"
    "CLIENT_ERROR object too large for cache\r\n"
    (feed_all c (Printf.sprintf "set big 0 0 64\r\n%s\r\n" (String.make 64 'v')));
  Alcotest.(check string) "block drained, stream intact" "END\r\n" (feed_all c "get big\r\n");
  Alcotest.(check string) "small values still fine" "STORED\r\n" (feed_all c "set s 0 0 4\r\nokay\r\n")

let test_value_cap_streaming_noreply () =
  (* noreply + oversized: no error reply, and the announced block is
     discarded across many partial feeds without being buffered *)
  let c = make_conn ~max_value:16 () in
  let replies = ref [] in
  let push s = replies := !replies @ P.feed c s in
  push "set big 0 0 1000 noreply\r\n";
  let blob = String.make 1000 'z' ^ "\r\n" in
  String.iter (fun ch -> push (String.make 1 ch)) blob;
  Alcotest.(check string) "silent discard" "" (String.concat "" !replies);
  Alcotest.(check string) "framing recovered" "END\r\n" (feed_all c "get big\r\n")

(* ---- byte-split equivalence property ---- *)

(* Replies for a command stream delivered as [chunks], against a fresh
   store each time so cas ids and counters are reproducible. *)
let run_stream chunks =
  let c = make_conn () in
  String.concat "" (List.concat_map (P.feed c) chunks)

(* A fixed pipelined stream exercising every framing hazard: noreply,
   binary data blocks containing \r\n (and a lone \r at a chunk edge),
   cas against deterministic ids, flush_all, and an error reply. *)
let canonical_stream =
  let bin = "a\r\nb\rc\nd" in
  String.concat ""
    [
      "set k1 7 0 5\r\nhello\r\n";
      Printf.sprintf "set bin 0 0 %d\r\n%s\r\n" (String.length bin) bin;
      "set quiet 0 0 2 noreply\r\nqq\r\n";
      "get k1 bin quiet\r\n";
      "gets k1\r\n";
      "cas k1 0 0 3 1\r\nnew\r\n";
      "incr missing 1\r\n";
      "add k1 0 0 1\r\nx\r\n";
      "delete quiet noreply\r\n";
      "frobnicate\r\n";
      "flush_all\r\n";
      "get k1\r\n";
      "set after 0 0 3\r\nyes\r\n";
      "get after\r\n";
    ]

let test_split_every_boundary () =
  let s = canonical_stream in
  let reference = run_stream [ s ] in
  Alcotest.(check bool) "reference produced replies" true (String.length reference > 0);
  for i = 0 to String.length s do
    let got = run_stream [ String.sub s 0 i; String.sub s i (String.length s - i) ] in
    if got <> reference then
      Alcotest.failf "split at byte %d diverged:\nwant %S\ngot  %S" i reference got
  done

(* Random pipelined streams under random chunkings must byte-match the
   single-feed delivery.  Commands and keys are drawn small so streams
   collide on keys (exercising cas/add/replace interplay); values draw
   from a bytes alphabet heavy in \r and \n. *)
let prop_random_chunking =
  let open QCheck in
  let key_gen = Gen.oneofl [ "a"; "bb"; "c3"; "dd4" ] in
  let value_gen =
    Gen.(
      string_size ~gen:(oneofl [ '\r'; '\n'; 'x'; 'y'; ' '; '\000' ]) (int_range 0 12))
  in
  let cmd_gen =
    Gen.(
      oneof
        [
          (let* k = key_gen and* v = value_gen and* nr = bool in
           return
             (Printf.sprintf "set %s 0 0 %d%s\r\n%s\r\n" k (String.length v)
                (if nr then " noreply" else "")
                v));
          (let* k = key_gen and* v = value_gen in
           return (Printf.sprintf "add %s 0 0 %d\r\n%s\r\n" k (String.length v) v));
          (let* k1 = key_gen and* k2 = key_gen in
           return (Printf.sprintf "get %s %s\r\n" k1 k2));
          (let* k = key_gen in
           return (Printf.sprintf "gets %s\r\n" k));
          (let* k = key_gen and* nr = bool in
           return (Printf.sprintf "delete %s%s\r\n" k (if nr then " noreply" else "")));
          (let* k = key_gen and* d = int_range 0 99 in
           return (Printf.sprintf "incr %s %d\r\n" k d));
          (let* k = key_gen and* v = value_gen and* id = int_range 1 9 in
           return (Printf.sprintf "cas %s 0 0 %d %d\r\n%s\r\n" k (String.length v) id v));
          return "flush_all\r\n";
          return "stats\r\n";
          return "bogus command\r\n";
        ])
  in
  let stream_gen =
    Gen.(
      let* cmds = list_size (int_range 1 12) cmd_gen in
      let s = String.concat "" cmds in
      let* cuts = list_size (int_range 0 8) (int_range 0 (max 1 (String.length s))) in
      return (s, List.sort_uniq compare cuts))
  in
  let arb =
    make stream_gen
      ~print:(fun (s, cuts) ->
        Printf.sprintf "stream=%S cuts=[%s]" s (String.concat ";" (List.map string_of_int cuts)))
  in
  QCheck.Test.make ~count:200 ~name:"chunked delivery is byte-identical to single feed" arb
    (fun (s, cuts) ->
      let n = String.length s in
      let cuts = List.filter (fun c -> c > 0 && c < n) cuts in
      let chunks =
        let rec slice prev = function
          | [] -> [ String.sub s prev (n - prev) ]
          | c :: rest -> String.sub s prev (c - prev) :: slice c rest
        in
        slice 0 cuts
      in
      run_stream chunks = run_stream [ s ])

(* ---- client-side reply-unit decoder (Protocol.Client) ----

   The decoder is the router's and loadgen's shared reply framer; the
   property that matters is chunking-independence: however the byte
   stream is split, the sequence of (unit bytes, class, hits) is
   identical, and the units concatenate back to the stream. *)

module C = P.Client

(* Drive the decoder the way a real client does: append each chunk to
   a compacting buffer, drain complete units.  Compaction mid-unit is
   part of the contract (decoder offsets are unit-relative). *)
let decode_stream chunks =
  let d = C.decoder () in
  let buf = ref (Bytes.create 32) in
  let pos = ref 0 and len = ref 0 in
  let out = ref [] in
  List.iter
    (fun chunk ->
      let n = String.length chunk in
      if !len + n > Bytes.length !buf then begin
        let live = !len - !pos in
        Bytes.blit !buf !pos !buf 0 live;
        len := live;
        pos := 0;
        if !len + n > Bytes.length !buf then begin
          let cap = ref (Bytes.length !buf) in
          while !len + n > !cap do
            cap := !cap * 2
          done;
          let nb = Bytes.create !cap in
          Bytes.blit !buf 0 nb 0 !len;
          buf := nb
        end
      end;
      Bytes.blit_string chunk 0 !buf !len n;
      len := !len + n;
      let progress = ref true in
      while !progress do
        match C.next_unit d !buf ~pos:!pos ~len:(!len - !pos) with
        | Some (endp, r) ->
            out := (Bytes.sub_string !buf !pos (endp - !pos), r) :: !out;
            pos := endp
        | None -> progress := false
      done)
    chunks;
  List.rev !out

(* one unit of each shape, with \r\n-bearing data and a data block
   that spells "END" (the binary-safety trap) *)
let client_units =
  [
    ("STORED\r\n", C.U_ok, 0);
    ("VALUE a 0 5\r\nhe\r\no\r\nEND\r\n", C.U_ok, 1);
    ("END\r\n", C.U_ok, 0);
    ("STAT pid 1\r\nSTAT version montage x\r\nSTAT zero 0\r\nEND\r\n", C.U_ok, 0);
    ("SERVER_ERROR shard down\r\n", C.U_server_error, 0);
    ("8\r\n", C.U_ok, 0);
    ("CLIENT_ERROR bad data chunk\r\n", C.U_error, 0);
    ("VALUE k 1 0\r\n\r\nVALUE kk 0 5\r\nEND\r\n\r\nEND\r\n", C.U_ok, 2);
    ("VERSION 1.2.3\r\n", C.U_ok, 0);
    ("DELETED\r\n", C.U_ok, 0);
    ("ERROR\r\n", C.U_error, 0);
    ("NOT_STORED\r\n", C.U_ok, 0);
  ]

let client_stream = String.concat "" (List.map (fun (u, _, _) -> u) client_units)

let check_units label got =
  let want = List.map (fun (u, c, h) -> (u, c, h)) client_units in
  let got = List.map (fun (u, (r : C.unit_result)) -> (u, r.C.cls, r.C.hits)) got in
  if got <> want then
    Alcotest.failf "%s: decoded %d unit(s), want %d; first divergence %s" label
      (List.length got) (List.length want)
      (match List.find_opt (fun (a, b) -> a <> b) (List.combine got want) with
      | Some ((gu, _, _), (wu, _, _)) -> Printf.sprintf "got %S want %S" gu wu
      | None -> "(length mismatch)")

let test_client_decoder_whole () = check_units "single feed" (decode_stream [ client_stream ])

let test_client_decoder_every_boundary () =
  let n = String.length client_stream in
  for i = 0 to n do
    let chunks = [ String.sub client_stream 0 i; String.sub client_stream i (n - i) ] in
    check_units (Printf.sprintf "split at %d" i) (decode_stream chunks)
  done

let test_client_decoder_byte_drip () =
  check_units "one byte at a time"
    (decode_stream (List.init (String.length client_stream) (fun i -> String.make 1 client_stream.[i])))

(* Encoders and server codec agree end to end: encode requests, run
   them through a live Protocol.conn, decode the reply stream, and the
   unit count matches the request count (the lockstep invariant the
   pipelined clients rely on). *)
let test_client_encoders_roundtrip () =
  let conn = make_conn () in
  let b = Buffer.create 256 in
  C.encode_set b ~key:"alpha" "hello";
  C.encode_set b ~flags:7 ~exptime:0 ~key:"beta" "wo\r\nrld";
  C.encode_get b [ "alpha"; "beta"; "missing" ];
  C.encode_gets b [ "alpha" ];
  C.encode_incr b "ctr" 5;
  C.encode_delete b "alpha";
  C.encode_stats b;
  C.encode_version b;
  C.encode_flush_all b ();
  let expected_units = 9 in
  let replies = feed_all conn (Buffer.contents b) in
  let units = decode_stream [ replies ] in
  Alcotest.(check int) "one reply unit per request" expected_units (List.length units);
  (match units with
  | (u1, r1) :: _ ->
      Alcotest.(check string) "set acked" "STORED\r\n" u1;
      Alcotest.(check bool) "ok class" true (r1.C.cls = C.U_ok)
  | [] -> Alcotest.fail "no units");
  let get_unit, get_r = List.nth units 2 in
  Alcotest.(check int) "get hits" 2 get_r.C.hits;
  Alcotest.(check bool) "binary-safe value" true (contains get_unit "wo\r\nrld");
  (* noreply requests produce no unit: the encoder and codec agree *)
  let b2 = Buffer.create 64 in
  C.encode_set b2 ~noreply:true ~key:"quiet" "x";
  C.encode_delete b2 ~noreply:true "quiet";
  C.encode_version b2;
  let units2 = decode_stream [ feed_all conn (Buffer.contents b2) ] in
  Alcotest.(check int) "noreply suppressed" 1 (List.length units2)

let prop_client_random_chunking =
  let open QCheck in
  let unit_gen =
    Gen.(
      oneof
        [
          oneofl
            [
              "STORED\r\n";
              "NOT_FOUND\r\n";
              "END\r\n";
              "ERROR\r\n";
              "SERVER_ERROR shard down\r\n";
              "TOUCHED\r\n";
              "17\r\n";
            ];
          (let* k = oneofl [ "a"; "bb"; "c3" ]
           and* v = string_size ~gen:(oneofl [ '\r'; '\n'; 'E'; 'N'; 'D'; ' '; 'x' ]) (int_range 0 9)
           in
           return (Printf.sprintf "VALUE %s 0 %d\r\n%s\r\nEND\r\n" k (String.length v) v));
          (let* n = int_range 0 4 in
           let* vs =
             flatten_l
               (List.init n (fun i ->
                    let* v = int_range 0 99 in
                    return (Printf.sprintf "STAT s%d %d\r\n" i v)))
           in
           return (String.concat "" vs ^ "END\r\n"));
        ])
  in
  let arb =
    make
      Gen.(
        let* units = list_size (int_range 1 12) unit_gen in
        let s = String.concat "" units in
        let* cuts = list_size (int_range 0 12) (int_bound (max 1 (String.length s - 1))) in
        return (units, s, List.sort_uniq compare cuts))
      ~print:(fun (_, s, cuts) ->
        Printf.sprintf "stream=%S cuts=[%s]" s (String.concat ";" (List.map string_of_int cuts)))
  in
  QCheck.Test.make ~count:300 ~name:"client decoder: chunking-independent unit boundaries" arb
    (fun (units, s, cuts) ->
      let n = String.length s in
      let cuts = List.filter (fun c -> c > 0 && c < n) cuts in
      let chunks =
        let rec slice prev = function
          | [] -> [ String.sub s prev (n - prev) ]
          | c :: rest -> String.sub s prev (c - prev) :: slice c rest
        in
        slice 0 cuts
      in
      let got = decode_stream chunks in
      List.map fst got = units
      && List.map fst (decode_stream [ s ]) = units)

let () =
  Alcotest.run "protocol"
    [
      ( "commands",
        [
          Alcotest.test_case "set/get" `Quick test_set_get_roundtrip;
          Alcotest.test_case "multi-key get" `Quick test_multi_key_get;
          Alcotest.test_case "add/replace" `Quick test_add_replace_semantics;
          Alcotest.test_case "append/prepend" `Quick test_append_prepend;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "incr/decr" `Quick test_incr_decr;
          Alcotest.test_case "cas" `Quick test_cas;
        ] );
      ( "framing",
        [
          Alcotest.test_case "binary-safe data" `Quick test_binary_safe_data;
          Alcotest.test_case "chunked arrival" `Quick test_chunked_arrival;
          Alcotest.test_case "pipelining" `Quick test_pipelining;
          Alcotest.test_case "noreply" `Quick test_noreply;
          Alcotest.test_case "errors" `Quick test_errors;
          Alcotest.test_case "quit closes" `Quick test_quit_closes;
          Alcotest.test_case "stats/version" `Quick test_stats_and_version;
        ] );
      ( "flush_all",
        [
          Alcotest.test_case "wipes current items" `Quick test_flush_all_wipes;
          Alcotest.test_case "delayed order" `Quick test_flush_all_delay;
          Alcotest.test_case "noreply" `Quick test_flush_all_noreply;
        ] );
      ( "caps",
        [
          Alcotest.test_case "command-line cap" `Quick test_line_cap;
          Alcotest.test_case "line cap, dripped input" `Quick test_line_cap_streaming;
          Alcotest.test_case "data-block cap" `Quick test_value_cap;
          Alcotest.test_case "block cap, dripped noreply" `Quick test_value_cap_streaming_noreply;
        ] );
      ( "byte-split",
        [
          Alcotest.test_case "every boundary of the canonical stream" `Quick
            test_split_every_boundary;
          QCheck_alcotest.to_alcotest prop_random_chunking;
        ] );
      ( "client",
        [
          Alcotest.test_case "decoder, single feed" `Quick test_client_decoder_whole;
          Alcotest.test_case "decoder, every boundary" `Quick
            test_client_decoder_every_boundary;
          Alcotest.test_case "decoder, byte drip" `Quick test_client_decoder_byte_drip;
          Alcotest.test_case "encoders round-trip the codec" `Quick
            test_client_encoders_roundtrip;
          QCheck_alcotest.to_alcotest prop_client_random_chunking;
        ] );
      ( "persistence",
        [ Alcotest.test_case "session across crash" `Quick test_protocol_over_montage_with_crash ] );
    ]
