(* The coalescing write-back path: unit coverage of the line-dedup
   layer, the batched Region API, on-vs-off write-back/fence/lint
   accounting on a deterministic Montage workload, the background
   advancer's parallel sharded drain, and a crash-recovery matrix —
   [Pcheck.explore] enumerating every fence-respecting crash state of
   coalesced mqueue/mhashmap/mskiplist runs and asserting the recovery
   predicate on each.

   Every esys here pins [coalesce_writebacks] explicitly (rather than
   inheriting MONTAGE_COALESCE) so the CI matrix legs exercise both
   library paths without inverting these assertions. *)

module W = Montage.Wb_coalescer
module R = Nvm.Region
module P = Nvm.Pcheck
module E = Montage.Epoch_sys
module Cfg = Montage.Config

let on_cfg = { Cfg.testing with max_threads = 2; coalesce_writebacks = true; drain_domains = 1 }
let off_cfg = { on_cfg with coalesce_writebacks = false }

(* Pin the advance arm ([Config.nb_advance]) the same way: tests that
   depend on the drain schedule run under both arms explicitly. *)
let arm ~nb cfg = { cfg with Cfg.nb_advance = nb }

(* ---- Wb_coalescer ---- *)

let flush_runs coal =
  let runs = ref [] in
  let totals = W.flush coal ~emit:(fun ~first ~lines -> runs := (first, lines) :: !runs) in
  (List.rev !runs, totals)

let test_coalescer_merges_overlap () =
  let coal = W.create () in
  W.add coal ~off:0 ~len:100;
  (* lines 0-1 *)
  W.add coal ~off:64 ~len:64;
  (* line 1 again *)
  let runs, (ranges, lines_in, lines_out) = flush_runs coal in
  Alcotest.(check (list (pair int int))) "one merged run" [ (0, 2) ] runs;
  Alcotest.(check int) "ranges" 2 ranges;
  Alcotest.(check int) "lines before merge" 3 lines_in;
  Alcotest.(check int) "lines after merge" 2 lines_out

let test_coalescer_merges_adjacent_keeps_gaps () =
  let coal = W.create () in
  W.add coal ~off:192 ~len:64;
  (* line 3 *)
  W.add coal ~off:0 ~len:64;
  (* line 0 *)
  W.add coal ~off:64 ~len:64;
  (* line 1: adjacent to line 0 *)
  let runs, (_, _, lines_out) = flush_runs coal in
  Alcotest.(check (list (pair int int))) "adjacent merged, gap preserved" [ (0, 2); (3, 1) ] runs;
  Alcotest.(check int) "line 2 never emitted" 3 lines_out

let test_coalescer_resets_after_flush () =
  let coal = W.create () in
  W.add coal ~off:0 ~len:64;
  let _ = flush_runs coal in
  Alcotest.(check bool) "empty after flush" true (W.is_empty coal);
  let runs, totals = flush_runs coal in
  Alcotest.(check (list (pair int int))) "nothing re-emitted" [] runs;
  Alcotest.(check (triple int int int)) "zero totals" (0, 0, 0) totals

let test_coalescer_grows () =
  let coal = W.create ~initial_capacity:2 () in
  (* disjoint lines force one entry each, well past the initial room *)
  for i = 0 to 499 do
    W.add coal ~off:(128 * i) ~len:8
  done;
  let runs, (ranges, _, lines_out) = flush_runs coal in
  Alcotest.(check int) "all runs kept" 500 (List.length runs);
  Alcotest.(check int) "ranges" 500 ranges;
  Alcotest.(check int) "no spurious merge" 500 lines_out

(* mirrors the coalescer against a naive line set over random ranges *)
let prop_coalescer_matches_line_set =
  QCheck.Test.make ~count:100 ~name:"flush emits exactly the union of added lines, once each"
    QCheck.(small_list (pair (int_bound 200) (int_bound 300)))
    (fun ranges ->
      let coal = W.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (off_line, len) ->
          let off = 64 * off_line in
          W.add coal ~off ~len;
          if len > 0 then
            for line = off / 64 to (off + len - 1) / 64 do
              Hashtbl.replace model line ()
            done)
        ranges;
      let emitted = Hashtbl.create 64 in
      let dup = ref false in
      let _ =
        W.flush coal ~emit:(fun ~first ~lines ->
            for line = first to first + lines - 1 do
              if Hashtbl.mem emitted line then dup := true;
              Hashtbl.replace emitted line ()
            done)
      in
      (not !dup)
      && Hashtbl.length emitted = Hashtbl.length model
      && Hashtbl.fold (fun line () acc -> acc && Hashtbl.mem model line) emitted true)

(* ---- Region batched API ---- *)

let test_writeback_lines_persists () =
  let r = R.create ~latency:Nvm.Latency.zero ~max_threads:2 ~capacity:(1 lsl 12) () in
  R.write_string r ~off:64 (String.make 128 'z');
  R.writeback_lines r ~tid:0 ~first:1 ~lines:2;
  R.sfence r ~tid:0;
  R.crash r;
  Alcotest.(check string) "batched lines survive" (String.make 128 'z')
    (R.read_string r ~off:64 ~len:128);
  let s = R.stats r in
  Alcotest.(check int) "writebacks count lines" 2 s.R.writebacks;
  Alcotest.(check int) "one fence" 1 s.R.fences

let test_note_coalesced_stats () =
  let r = R.create ~latency:Nvm.Latency.zero ~max_threads:2 ~capacity:(1 lsl 12) () in
  let c = R.enable_pcheck r in
  R.note_coalesced r ~tid:0 ~ranges:5 ~lines_in:9 ~lines_out:4;
  R.note_coalesced r ~tid:1 ~ranges:2 ~lines_in:2 ~lines_out:2;
  let s = R.stats r in
  Alcotest.(check int) "ranges" 7 s.R.coalesce_ranges;
  Alcotest.(check int) "lines in" 11 s.R.coalesce_lines_in;
  Alcotest.(check int) "lines out" 6 s.R.coalesce_lines_out;
  Alcotest.(check (triple int int int)) "checker mirrors totals" (7, 11, 6) (P.coalesce_totals c)

(* ---- on-vs-off accounting on a deterministic Montage workload ---- *)

(* Same-epoch rewrites of few keys through a tiny ring: the overflow
   path fires constantly and the buffered ranges overlap heavily —
   exactly the traffic coalescing exists to dedup. *)
let rewrite_workload cfg =
  let region = R.create ~latency:Nvm.Latency.zero ~max_threads:4 ~capacity:(1 lsl 22) () in
  let cfg = { cfg with Cfg.buffer_size = 4 } in
  let esys = E.create ~config:cfg region in
  let m = Pstructs.Mhashmap.create ~buckets:16 esys in
  for k = 0 to 7 do
    (* back-to-back same-epoch rewrites keep a run of same-line records
       in the ring together, so overflow batches and the epoch drain
       both see the overlap *)
    for round = 0 to 9 do
      ignore
        (Pstructs.Mhashmap.put m ~tid:0
           (Printf.sprintf "key%d" k)
           (Printf.sprintf "round%d" round))
    done
  done;
  E.advance_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:0;
  (region, R.stats region)

(* Parameterized over the advance arm.  Under the blocking arm the
   uncoalesced overflow drain pays a fence per ring eviction, so
   coalescing strictly reduces fences too; the nonblocking arm's
   overflow path publishes the whole ring behind one batched fence
   either way, so fence counts can legitimately tie there and the
   coalescing win is write-back dedup alone. *)
let test_coalescing_reduces_writebacks_and_fences ~nb () =
  let _, on = rewrite_workload (arm ~nb on_cfg) in
  let _, off = rewrite_workload (arm ~nb off_cfg) in
  Alcotest.(check bool)
    (Printf.sprintf "fewer write-backs (%d < %d)" on.R.writebacks off.R.writebacks)
    true
    (on.R.writebacks < off.R.writebacks);
  Alcotest.(check bool)
    (Printf.sprintf "no more fences (%d %s %d)" on.R.fences (if nb then "<=" else "<") off.R.fences)
    true
    (if nb then on.R.fences <= off.R.fences else on.R.fences < off.R.fences);
  Alcotest.(check bool) "dedup ratio > 1" true (on.R.coalesce_lines_in > on.R.coalesce_lines_out);
  Alcotest.(check int) "off path never coalesces" 0 off.R.coalesce_ranges

let lint_count c kind =
  List.fold_left (fun acc (k, _, n) -> if k = kind then acc + n else acc) 0 (P.lint_counts c)

let test_coalescing_removes_duplicate_flushes () =
  let region_on, _ = rewrite_workload on_cfg in
  let region_off, _ = rewrite_workload off_cfg in
  let dup r =
    match R.checker r with Some c -> lint_count c P.Duplicate_flush | None -> Alcotest.fail "no checker"
  in
  (* ten same-epoch rewrites per key drain as ten buffered records over
     the same lines: the uncoalesced epoch drain flushes each again
     behind one fence *)
  Alcotest.(check bool) "uncoalesced drain duplicates flushes" true (dup region_off > 0);
  Alcotest.(check int) "coalesced drain flushes each line once" 0 (dup region_on)

(* ---- parallel epoch drain ---- *)

let test_parallel_drain_correct () =
  (* region slots: 2 workers + advancer + 3 spare, so the advancer may
     fan out over drain_domains = 2 shard domains *)
  let region = R.create ~latency:Nvm.Latency.zero ~max_threads:6 ~capacity:(1 lsl 22) () in
  let cfg = { on_cfg with Cfg.drain_domains = 2; buffer_size = 256 } in
  let esys = E.create ~config:cfg region in
  let m = Pstructs.Mhashmap.create ~buckets:16 esys in
  (* both workers leave loaded buffers for the advancer to shard *)
  let workers =
    Array.init 2 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to 49 do
              ignore (Pstructs.Mhashmap.put m ~tid (Printf.sprintf "t%d-%d" tid i) (string_of_int i))
            done))
  in
  Array.iter Domain.join workers;
  let advancer = cfg.Cfg.max_threads in
  E.advance_epoch esys ~tid:advancer;
  E.advance_epoch esys ~tid:advancer;
  R.crash region;
  let esys2, payloads = E.recover ~config:{ cfg with Cfg.pcheck = Cfg.Pcheck_off } region in
  let m2 = Pstructs.Mhashmap.recover ~buckets:16 esys2 payloads in
  Alcotest.(check int) "all pairs durable after the sharded drain" 100
    (Pstructs.Mhashmap.size m2);
  for tid = 0 to 1 do
    for i = 0 to 49 do
      Alcotest.(check (option string))
        (Printf.sprintf "t%d-%d" tid i)
        (Some (string_of_int i))
        (Pstructs.Mhashmap.get m2 ~tid (Printf.sprintf "t%d-%d" tid i))
    done
  done;
  match R.checker region with
  | None -> Alcotest.fail "checker missing"
  | Some c -> Alcotest.(check int) "no violations" 0 (List.length (P.violations c))

(* ---- crash-recovery matrix over every fence-respecting crash state ---- *)

(* Host run: checker pre-attached with an event log (E.create reuses it
   — enable_pcheck is idempotent), coalescing on, manual epochs. *)
let logged_esys ?(cfg = on_cfg) () =
  let region = R.create ~latency:Nvm.Latency.zero ~max_threads:4 ~capacity:(1 lsl 18) () in
  let c = R.enable_pcheck ~mode:P.Enforce ~log_events:true region in
  let esys = E.create ~config:cfg region in
  (region, c, esys)

let recover_cfg = { on_cfg with Cfg.pcheck = Cfg.Pcheck_off }

(* Materialize one crash state and run full recovery on it. *)
let recovered_from image =
  let r2 = R.of_image ~latency:Nvm.Latency.zero ~max_threads:4 image in
  E.recover ~config:recover_cfg r2

let explore_states = 400

let test_crash_matrix_mqueue ~nb () =
  let _, c, esys = logged_esys ~cfg:(arm ~nb on_cfg) () in
  let q = Pstructs.Mqueue.create esys in
  let values = List.init 6 (fun i -> Printf.sprintf "v%d" i) in
  List.iteri
    (fun i v ->
      Pstructs.Mqueue.enqueue q ~tid:0 v;
      if i = 2 then E.sync esys ~tid:0)
    values;
  E.advance_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:0;
  (* at every fence-respecting crash state, the recovered queue must be
     a prefix of the enqueue order — anything else means the coalesced
     drain persisted ranges out of epoch order *)
  let report =
    P.explore ~max_states:explore_states c (fun image ->
        match recovered_from image with
        | exception _ -> false
        | esys2, payloads ->
            let q2 = Pstructs.Mqueue.recover esys2 payloads in
            let rec dequeued acc =
              match Pstructs.Mqueue.dequeue q2 ~tid:0 with
              | Some v -> dequeued (v :: acc)
              | None -> List.rev acc
            in
            let got = dequeued [] in
            List.length got <= List.length values
            && List.for_all2 ( = ) got (List.filteri (fun i _ -> i < List.length got) values))
  in
  Alcotest.(check bool) "states explored" true (report.P.states > 0);
  Alcotest.(check int) "recovery predicate holds everywhere" 0 report.P.failures

let test_crash_matrix_mhashmap ~nb () =
  let _, c, esys = logged_esys ~cfg:(arm ~nb on_cfg) () in
  let m = Pstructs.Mhashmap.create ~buckets:8 esys in
  let written = Hashtbl.create 16 in
  for i = 0 to 5 do
    let k = Printf.sprintf "k%d" i in
    (* two values per key across an epoch boundary, so crash states
       straddle an in-place rewrite *)
    ignore (Pstructs.Mhashmap.put m ~tid:0 k (Printf.sprintf "a%d" i));
    Hashtbl.replace written (k, Printf.sprintf "a%d" i) ()
  done;
  E.sync esys ~tid:0;
  for i = 0 to 5 do
    let k = Printf.sprintf "k%d" i in
    ignore (Pstructs.Mhashmap.put m ~tid:0 k (Printf.sprintf "b%d" i));
    Hashtbl.replace written (k, Printf.sprintf "b%d" i) ()
  done;
  E.advance_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:0;
  let report =
    P.explore ~max_states:explore_states c (fun image ->
        match recovered_from image with
        | exception _ -> false
        | esys2, payloads ->
            let m2 = Pstructs.Mhashmap.recover ~buckets:8 esys2 payloads in
            List.for_all
              (fun (k, v) -> Hashtbl.mem written (k, v))
              (Pstructs.Mhashmap.to_alist m2 ~tid:0))
  in
  Alcotest.(check bool) "states explored" true (report.P.states > 0);
  Alcotest.(check int) "every recovered pair was written" 0 report.P.failures

let test_crash_matrix_mskiplist ~nb () =
  let _, c, esys = logged_esys ~cfg:(arm ~nb on_cfg) () in
  let s = Pstructs.Mskiplist.create ~seed:11 esys in
  let written = Hashtbl.create 16 in
  for i = 0 to 5 do
    let k = Printf.sprintf "k%02d" i in
    ignore (Pstructs.Mskiplist.put s ~tid:0 k (string_of_int i));
    Hashtbl.replace written (k, string_of_int i) ()
  done;
  E.sync esys ~tid:0;
  ignore (Pstructs.Mskiplist.remove s ~tid:0 "k03");
  ignore (Pstructs.Mskiplist.put s ~tid:0 "k06" "6");
  Hashtbl.replace written ("k06", "6") ();
  E.advance_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:0;
  let report =
    P.explore ~max_states:explore_states c (fun image ->
        match recovered_from image with
        | exception _ -> false
        | esys2, payloads ->
            let s2 = Pstructs.Mskiplist.recover esys2 payloads in
            List.for_all (fun (k, v) -> Hashtbl.mem written (k, v)) (Pstructs.Mskiplist.to_alist s2 ~tid:0))
  in
  Alcotest.(check bool) "states explored" true (report.P.states > 0);
  Alcotest.(check int) "every recovered pair was written" 0 report.P.failures

let test_crash_matrix_mvector () =
  let _, c, esys = logged_esys () in
  let v = Pstructs.Mvector.create esys in
  for i = 0 to 5 do
    ignore (Pstructs.Mvector.push v ~tid:0 (Printf.sprintf "v%d" i))
  done;
  E.sync esys ~tid:0;
  (* straddle an epoch boundary with an in-place rewrite and a pop *)
  ignore (Pstructs.Mvector.set v ~tid:0 2 "rewritten");
  ignore (Pstructs.Mvector.pop v ~tid:0);
  E.advance_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:0;
  (* recovered contents must be dense (indexes 0..n-1) and every slot a
     value that was written at that index *)
  let legal = [| [ "v0" ]; [ "v1" ]; [ "v2"; "rewritten" ]; [ "v3" ]; [ "v4" ]; [ "v5" ] |] in
  let report =
    P.explore ~max_states:explore_states c (fun image ->
        match recovered_from image with
        | exception _ -> false
        | esys2, payloads ->
            let v2 = Pstructs.Mvector.recover esys2 payloads in
            let got = Pstructs.Mvector.to_list v2 ~tid:0 in
            List.length got <= Array.length legal
            && List.for_all2
                 (fun i x -> List.mem x legal.(i))
                 (List.init (List.length got) Fun.id)
                 got)
  in
  Alcotest.(check bool) "states explored" true (report.P.states > 0);
  Alcotest.(check int) "recovered vector dense and written" 0 report.P.failures

let test_crash_matrix_mgraph () =
  let _, c, esys = logged_esys () in
  let g = Pstructs.Mgraph.create ~capacity:8 esys in
  for v = 0 to 3 do
    ignore (Pstructs.Mgraph.add_vertex g ~tid:0 v (Printf.sprintf "v%d" v))
  done;
  ignore (Pstructs.Mgraph.add_edge g ~tid:0 0 1 "e01");
  ignore (Pstructs.Mgraph.add_edge g ~tid:0 1 2 "e12");
  E.sync esys ~tid:0;
  ignore (Pstructs.Mgraph.remove_edge g ~tid:0 0 1);
  ignore (Pstructs.Mgraph.add_edge g ~tid:0 2 3 "e23");
  ignore (Pstructs.Mgraph.remove_vertex g ~tid:0 0);
  E.advance_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:0;
  (* invariant at every crash state: every recovered edge's endpoints
     are recovered vertices with the attrs they were written with *)
  let report =
    P.explore ~max_states:explore_states c (fun image ->
        match recovered_from image with
        | exception _ -> false
        | esys2, payloads ->
            let g2 = Pstructs.Mgraph.recover ~capacity:8 esys2 payloads in
            let vertex_ok v =
              match Pstructs.Mgraph.vertex_attrs g2 ~tid:0 v with
              | None -> not (Pstructs.Mgraph.has_vertex g2 v)
              | Some a -> a = Printf.sprintf "v%d" v
            in
            let edge_ok (a, b, attrs) =
              (not (Pstructs.Mgraph.has_edge g2 a b))
              || (Pstructs.Mgraph.has_vertex g2 a
                 && Pstructs.Mgraph.has_vertex g2 b
                 && Pstructs.Mgraph.edge_attrs g2 ~tid:0 a b = Some attrs)
            in
            List.for_all vertex_ok [ 0; 1; 2; 3 ]
            && List.for_all edge_ok [ (0, 1, "e01"); (1, 2, "e12"); (2, 3, "e23") ])
  in
  Alcotest.(check bool) "states explored" true (report.P.states > 0);
  Alcotest.(check int) "edges never dangle" 0 report.P.failures

(* ---- parallel-recovery determinism ---- *)

(* One crash image, recovered at parallelism 1, 2, and 8: §5.1's
   parallel scan/sweep must be a pure performance knob — the recovered
   abstract state has to be bit-identical across k. *)

let test_parallel_recovery_deterministic_mhashmap () =
  let region = R.create ~latency:Nvm.Latency.zero ~max_threads:10 ~capacity:(1 lsl 18) () in
  let esys = E.create ~config:on_cfg region in
  let m = Pstructs.Mhashmap.create ~buckets:8 esys in
  for i = 0 to 39 do
    ignore (Pstructs.Mhashmap.put m ~tid:0 (Printf.sprintf "k%02d" (i mod 20)) (string_of_int i))
  done;
  E.sync esys ~tid:0;
  ignore (Pstructs.Mhashmap.put m ~tid:0 "late" "lost");
  R.crash region;
  let image = R.media_image region in
  let recovered k =
    let r = R.of_image ~latency:Nvm.Latency.zero ~max_threads:10 image in
    let esys2, payloads = E.recover ~config:recover_cfg ~threads:k r in
    let m2 = Pstructs.Mhashmap.recover ~buckets:8 esys2 payloads in
    List.sort compare (Pstructs.Mhashmap.to_alist m2 ~tid:0)
  in
  let at1 = recovered 1 in
  Alcotest.(check bool) "something recovered" true (at1 <> []);
  Alcotest.(check (list (pair string string))) "k=2 identical" at1 (recovered 2);
  Alcotest.(check (list (pair string string))) "k=8 identical" at1 (recovered 8)

let test_parallel_recovery_deterministic_mgraph () =
  let region = R.create ~latency:Nvm.Latency.zero ~max_threads:10 ~capacity:(1 lsl 18) () in
  let esys = E.create ~config:on_cfg region in
  let g = Pstructs.Mgraph.create ~capacity:16 esys in
  for v = 0 to 9 do
    ignore (Pstructs.Mgraph.add_vertex g ~tid:0 v (Printf.sprintf "attr%d" v))
  done;
  for v = 0 to 8 do
    ignore (Pstructs.Mgraph.add_edge g ~tid:0 v (v + 1) (Printf.sprintf "e%d" v))
  done;
  E.sync esys ~tid:0;
  ignore (Pstructs.Mgraph.remove_vertex g ~tid:0 4);
  R.crash region;
  let image = R.media_image region in
  let summary k =
    let r = R.of_image ~latency:Nvm.Latency.zero ~max_threads:10 image in
    let esys2, payloads = E.recover ~config:recover_cfg ~threads:k r in
    (* graph rebuild itself also fans out over [threads] domains *)
    let g2 = Pstructs.Mgraph.recover ~capacity:16 ~threads:k esys2 payloads in
    let verts =
      List.filter_map
        (fun v -> Option.map (fun a -> (v, a)) (Pstructs.Mgraph.vertex_attrs g2 ~tid:0 v))
        (List.init 16 Fun.id)
    in
    let edges =
      List.concat_map
        (fun a ->
          List.filter_map
            (fun b ->
              if a < b then Option.map (fun e -> (a, b, e)) (Pstructs.Mgraph.edge_attrs g2 ~tid:0 a b)
              else None)
            (List.init 16 Fun.id))
        (List.init 16 Fun.id)
    in
    (verts, edges)
  in
  let v1, e1 = summary 1 in
  Alcotest.(check bool) "vertices recovered" true (v1 <> []);
  let v2, e2 = summary 2 in
  let v8, e8 = summary 8 in
  Alcotest.(check bool) "k=2 identical" true (v1 = v2 && e1 = e2);
  Alcotest.(check bool) "k=8 identical" true (v1 = v8 && e1 = e8)

let () =
  Alcotest.run "coalesce"
    [
      ( "coalescer",
        [
          Alcotest.test_case "merges overlap" `Quick test_coalescer_merges_overlap;
          Alcotest.test_case "merges adjacent, keeps gaps" `Quick
            test_coalescer_merges_adjacent_keeps_gaps;
          Alcotest.test_case "resets after flush" `Quick test_coalescer_resets_after_flush;
          Alcotest.test_case "grows" `Quick test_coalescer_grows;
          QCheck_alcotest.to_alcotest prop_coalescer_matches_line_set;
        ] );
      ( "region",
        [
          Alcotest.test_case "batched lines persist" `Quick test_writeback_lines_persists;
          Alcotest.test_case "coalescing stats" `Quick test_note_coalesced_stats;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "fewer write-backs and fences (nb advance)" `Quick
            (test_coalescing_reduces_writebacks_and_fences ~nb:true);
          Alcotest.test_case "fewer write-backs and fences (blocking advance)" `Quick
            (test_coalescing_reduces_writebacks_and_fences ~nb:false);
          Alcotest.test_case "duplicate flushes eliminated" `Quick
            test_coalescing_removes_duplicate_flushes;
        ] );
      ( "parallel-drain",
        [ Alcotest.test_case "sharded drain is crash-correct" `Quick test_parallel_drain_correct ] );
      ( "crash-matrix",
        [
          Alcotest.test_case "mqueue (nb advance)" `Quick (test_crash_matrix_mqueue ~nb:true);
          Alcotest.test_case "mqueue (blocking advance)" `Quick (test_crash_matrix_mqueue ~nb:false);
          Alcotest.test_case "mhashmap (nb advance)" `Quick (test_crash_matrix_mhashmap ~nb:true);
          Alcotest.test_case "mhashmap (blocking advance)" `Quick
            (test_crash_matrix_mhashmap ~nb:false);
          Alcotest.test_case "mskiplist (nb advance)" `Quick (test_crash_matrix_mskiplist ~nb:true);
          Alcotest.test_case "mskiplist (blocking advance)" `Quick
            (test_crash_matrix_mskiplist ~nb:false);
          Alcotest.test_case "mvector" `Quick test_crash_matrix_mvector;
          Alcotest.test_case "mgraph" `Quick test_crash_matrix_mgraph;
        ] );
      ( "parallel-recovery",
        [
          Alcotest.test_case "mhashmap identical at k=1/2/8" `Quick
            test_parallel_recovery_deterministic_mhashmap;
          Alcotest.test_case "mgraph identical at k=1/2/8" `Quick
            test_parallel_recovery_deterministic_mgraph;
        ] );
    ]
