(* Concurrency property tests for Persist_buffer: a producer domain and
   a consumer domain race push/pop/drain interleavings while the
   persistency checker runs in Enforce mode, and every queued record
   must (a) be flushed at least once before its epoch retires — the
   buffered-durability contract — and (b) be consumed exactly once,
   with each consumer seeing entries in push order.  Plus deterministic
   coverage of the snapshot-bounded [drain] vs [drain_all] split and
   [is_full]. *)

module PB = Montage.Persist_buffer
module R = Nvm.Region
module P = Nvm.Pcheck

(* One two-domain session: tid 0 produces [n] records at unique,
   line-disjoint offsets (registering each as an epoch-5 obligation
   with the checker); tid 1 concurrently pops and snapshot-drains,
   flushing everything it consumes.  At the end the producer
   [drain_all]s the remainder and the epoch clock is advanced past the
   durability deadline — in Enforce mode the checker raises if any
   record missed media.  Returns the three consumption logs in
   consumption order. *)
let run_session ~seed ~n =
  let r = R.create ~latency:Nvm.Latency.zero ~max_threads:4 ~capacity:(1 lsl 16) () in
  let c = R.enable_pcheck ~mode:P.Enforce r in
  let pb = PB.create ~capacity:8 in
  let overflow = ref [] in
  let stop = Atomic.make false in
  let consumer =
    Domain.spawn (fun () ->
        let rng = Util.Xoshiro.create ((seed * 2) + 1) in
        let acc = ref [] in
        let consume off len =
          R.writeback r ~tid:1 ~off ~len;
          acc := (off, len) :: !acc
        in
        let step () =
          if Util.Xoshiro.int rng 4 = 0 then begin
            PB.drain pb consume;
            R.sfence r ~tid:1
          end
          else
            match PB.pop pb with
            | Some (off, len) ->
                consume off len;
                R.sfence r ~tid:1
            | None -> Domain.cpu_relax ()
        in
        while not (Atomic.get stop) do
          step ()
        done;
        (* sweep anything still visible so the producer's final drain
           genuinely races a draining consumer at least once *)
        step ();
        !acc)
  in
  for i = 0 to n - 1 do
    (* one line per record: unique offsets keep records line-disjoint,
       so concurrent flushes by both tids can never race a store *)
    let off = 64 * i and len = 1 + (i mod 56) in
    R.write_string r ~off (String.make len 'x');
    P.on_buffer_push c ~tid:0 ~epoch:5 ~off ~len;
    PB.push pb
      ~flush:(fun o l ->
        R.writeback r ~tid:0 ~off:o ~len:l;
        R.sfence_async r ~tid:0;
        overflow := (o, l) :: !overflow)
      ~off ~len
  done;
  Atomic.set stop true;
  let consumed = Domain.join consumer in
  let final = ref [] in
  PB.drain_all pb (fun off len ->
      R.writeback r ~tid:0 ~off ~len;
      final := (off, len) :: !final);
  R.sfence r ~tid:0;
  (* every record's epoch-5 obligation falls due at the tick to 7:
     Enforce raises Epoch_retired_unflushed here if one missed media *)
  P.on_epoch_advance c ~epoch:6;
  P.on_epoch_advance c ~epoch:7;
  Alcotest.(check int) "no violations" 0 (List.length (P.violations c));
  (List.rev !overflow, List.rev consumed, List.rev !final)

let offs_increasing l =
  let rec go = function
    | (o1, _) :: ((o2, _) :: _ as rest) -> o1 < o2 && go rest
    | _ -> true
  in
  go l

(* The three logs partition the pushed records exactly: nothing lost,
   nothing duplicated (offsets are unique, so sorting the union and
   comparing to the push list is a multiset check). *)
let check_session seed =
  let n = 200 + (abs seed mod 300) in
  let overflow, consumed, final = run_session ~seed ~n in
  let expected = List.init n (fun i -> (64 * i, 1 + (i mod 56))) in
  let union = List.sort compare (overflow @ consumed @ final) in
  List.sort compare expected = union
  (* pops advance the shared head, so each consumer individually
     observes entries in push order *)
  && offs_increasing overflow
  && offs_increasing consumed
  && offs_increasing final

let prop_two_domain_sessions =
  QCheck.Test.make ~count:12 ~name:"two-domain push/pop/drain flushes every record exactly once"
    QCheck.small_int check_session

let test_two_domain_deterministic () =
  let overflow, consumed, final = run_session ~seed:7 ~n:400 in
  Alcotest.(check int) "nothing lost or duplicated" 400
    (List.length overflow + List.length consumed + List.length final)

(* [drain] is bounded by the tail observed at entry: records the
   callback pushes mid-drain are left for the next drain. *)
let test_snapshot_drain_excludes_pushes_during_drain () =
  let pb = PB.create ~capacity:64 in
  let noflush _ _ = Alcotest.fail "no overflow expected" in
  for i = 0 to 9 do
    PB.push pb ~flush:noflush ~off:(64 * i) ~len:8
  done;
  let drained = ref 0 in
  PB.drain pb (fun _ _ ->
      incr drained;
      (* a fast producer appending concurrently must not extend this
         drain *)
      PB.push pb ~flush:noflush ~off:(64 * (100 + !drained)) ~len:8);
  Alcotest.(check int) "exactly the snapshot" 10 !drained;
  let rest = ref 0 in
  PB.drain_all pb (fun _ _ -> incr rest);
  Alcotest.(check int) "mid-drain pushes kept for the next drain" 10 !rest

let test_drain_all_chases_tail () =
  let pb = PB.create ~capacity:64 in
  let noflush _ _ = () in
  for i = 0 to 4 do
    PB.push pb ~flush:noflush ~off:(64 * i) ~len:8
  done;
  let seen = ref [] in
  let budget = ref 3 in
  PB.drain_all pb (fun off _ ->
      seen := off :: !seen;
      if !budget > 0 then begin
        decr budget;
        PB.push pb ~flush:noflush ~off:(64 * (50 + !budget)) ~len:8
      end);
  Alcotest.(check int) "drain_all consumes pushes made mid-drain" 8 (List.length !seen);
  Alcotest.(check bool) "buffer empty" true (PB.is_empty pb)

let test_is_full () =
  let pb = PB.create ~capacity:4 in
  let noflush _ _ = () in
  Alcotest.(check bool) "fresh buffer not full" false (PB.is_full pb);
  for i = 0 to 3 do
    PB.push pb ~flush:noflush ~off:(64 * i) ~len:8
  done;
  Alcotest.(check bool) "at capacity" true (PB.is_full pb);
  ignore (PB.pop pb);
  Alcotest.(check bool) "pop frees a slot" false (PB.is_full pb)

let () =
  Alcotest.run "persist_buffer_concurrency"
    [
      ( "two-domain",
        [
          Alcotest.test_case "deterministic session" `Quick test_two_domain_deterministic;
          QCheck_alcotest.to_alcotest prop_two_domain_sessions;
        ] );
      ( "drain-semantics",
        [
          Alcotest.test_case "snapshot drain is bounded" `Quick
            test_snapshot_drain_excludes_pushes_during_drain;
          Alcotest.test_case "drain_all chases the tail" `Quick test_drain_all_chases_tail;
          Alcotest.test_case "is_full" `Quick test_is_full;
        ] );
    ]
