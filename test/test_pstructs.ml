(* Tests for the Montage data structures: hashmap, queue, stack,
   nonblocking stack/queue, and graph — functional behaviour,
   concurrency, and crash recovery. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config

let testing_cfg = { Cfg.testing with max_threads = 6 }

let make_esys ?(capacity = 1 lsl 24) () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity () in
  (region, E.create ~config:testing_cfg region)

(* ---- hashmap ---- *)

let test_map_put_get_remove () =
  let _, esys = make_esys () in
  let m = Pstructs.Mhashmap.create ~buckets:64 esys in
  Alcotest.(check (option string)) "empty get" None (Pstructs.Mhashmap.get m ~tid:0 "k1");
  Alcotest.(check (option string)) "fresh put" None (Pstructs.Mhashmap.put m ~tid:0 "k1" "v1");
  Alcotest.(check (option string)) "get back" (Some "v1") (Pstructs.Mhashmap.get m ~tid:0 "k1");
  Alcotest.(check (option string)) "update returns old" (Some "v1") (Pstructs.Mhashmap.put m ~tid:0 "k1" "v2");
  Alcotest.(check (option string)) "updated" (Some "v2") (Pstructs.Mhashmap.get m ~tid:0 "k1");
  Alcotest.(check (option string)) "remove returns value" (Some "v2") (Pstructs.Mhashmap.remove m ~tid:0 "k1");
  Alcotest.(check (option string)) "gone" None (Pstructs.Mhashmap.get m ~tid:0 "k1");
  Alcotest.(check (option string)) "remove missing" None (Pstructs.Mhashmap.remove m ~tid:0 "k1")

let test_map_put_if_absent () =
  let _, esys = make_esys () in
  let m = Pstructs.Mhashmap.create ~buckets:64 esys in
  Alcotest.(check bool) "first wins" true (Pstructs.Mhashmap.put_if_absent m ~tid:0 "k" "a");
  Alcotest.(check bool) "second loses" false (Pstructs.Mhashmap.put_if_absent m ~tid:0 "k" "b");
  Alcotest.(check (option string)) "value is first" (Some "a") (Pstructs.Mhashmap.get m ~tid:0 "k")

let test_map_size_and_collisions () =
  let _, esys = make_esys () in
  (* 4 buckets: guaranteed collisions exercise chain order *)
  let m = Pstructs.Mhashmap.create ~buckets:4 esys in
  for i = 0 to 99 do
    ignore (Pstructs.Mhashmap.put m ~tid:0 (Pstruct_gen.key3 i) (string_of_int i))
  done;
  Alcotest.(check int) "size" 100 (Pstructs.Mhashmap.size m);
  let ok = ref true in
  for i = 0 to 99 do
    if Pstructs.Mhashmap.get m ~tid:0 (Pstruct_gen.key3 i) <> Some (string_of_int i) then
      ok := false
  done;
  Alcotest.(check bool) "all retrievable" true !ok

let test_map_concurrent_disjoint_keys () =
  let _, esys = make_esys () in
  let m = Pstructs.Mhashmap.create ~buckets:256 esys in
  let per = 300 in
  let domains =
    Array.init 4 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (Pstructs.Mhashmap.put m ~tid (Pstruct_gen.tid_key tid i) "x")
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "all inserted" (4 * per) (Pstructs.Mhashmap.size m)

let test_map_concurrent_same_key_last_writer () =
  let _, esys = make_esys () in
  let m = Pstructs.Mhashmap.create ~buckets:16 esys in
  let domains =
    Array.init 4 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to 200 do
              ignore (Pstructs.Mhashmap.put m ~tid "hot" (Printf.sprintf "%d:%d" tid i))
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "single key" 1 (Pstructs.Mhashmap.size m);
  Alcotest.(check bool) "some value present" true (Pstructs.Mhashmap.get m ~tid:0 "hot" <> None)

let test_map_crash_recovery_preserves_synced () =
  let region, esys = make_esys () in
  let m = Pstructs.Mhashmap.create ~buckets:64 esys in
  for i = 0 to 49 do
    ignore (Pstructs.Mhashmap.put m ~tid:0 (Pstruct_gen.k i) (Pstruct_gen.v i))
  done;
  E.sync esys ~tid:0;
  (* post-sync writes are lost by the crash *)
  ignore (Pstructs.Mhashmap.put m ~tid:0 "late" "update");
  ignore (Pstructs.Mhashmap.remove m ~tid:0 "k0");
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let m2 = Pstructs.Mhashmap.recover ~buckets:64 esys2 payloads in
  Alcotest.(check int) "synced contents recovered" 50 (Pstructs.Mhashmap.size m2);
  Alcotest.(check (option string)) "k0 still there (remove rolled back)" (Some "v0")
    (Pstructs.Mhashmap.get m2 ~tid:0 "k0");
  Alcotest.(check (option string)) "late insert lost" None (Pstructs.Mhashmap.get m2 ~tid:0 "late")

let test_map_parallel_recovery_matches () =
  let region, esys = make_esys () in
  let m = Pstructs.Mhashmap.create ~buckets:64 esys in
  for i = 0 to 199 do
    ignore (Pstructs.Mhashmap.put m ~tid:0 (Pstruct_gen.k3 i) (string_of_int (i * i)))
  done;
  E.sync esys ~tid:0;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let m2 = Pstructs.Mhashmap.recover ~buckets:64 ~threads:4 esys2 payloads in
  Alcotest.(check int) "all pairs" 200 (Pstructs.Mhashmap.size m2);
  let sorted = List.sort compare (Pstructs.Mhashmap.to_alist m2 ~tid:0) in
  let expected = List.init 200 (fun i -> (Pstruct_gen.k3 i, string_of_int (i * i))) in
  Alcotest.(check bool) "contents identical" true (sorted = expected)

(* model-based property: the map behaves like a sequential assoc map *)
let qcheck_map_vs_model =
  QCheck.Test.make ~name:"hashmap matches model under random ops" ~count:30
    Pstruct_gen.script_arb
    (fun script ->
      let _, esys = make_esys ~capacity:(1 lsl 22) () in
      let m = Pstructs.Mhashmap.create ~buckets:8 esys in
      let model = Hashtbl.create 16 in
      List.for_all
        (fun (k, v) ->
          let key = Pstruct_gen.num_key k in
          if String.length v mod 3 = 0 then begin
            (* remove *)
            let expected = Hashtbl.find_opt model key in
            Hashtbl.remove model key;
            Pstructs.Mhashmap.remove m ~tid:0 key = expected
          end
          else begin
            let expected = Hashtbl.find_opt model key in
            Hashtbl.replace model key v;
            Pstructs.Mhashmap.put m ~tid:0 key v = expected
          end)
        script
      && Hashtbl.fold
           (fun k v acc -> acc && Pstructs.Mhashmap.get m ~tid:0 k = Some v)
           model true)

(* ---- queue ---- *)

let test_queue_fifo () =
  let _, esys = make_esys () in
  let q = Pstructs.Mqueue.create esys in
  List.iter (Pstructs.Mqueue.enqueue q ~tid:0) [ "a"; "b"; "c" ];
  Alcotest.(check (option string)) "peek" (Some "a") (Pstructs.Mqueue.peek q ~tid:0);
  Alcotest.(check (option string)) "a" (Some "a") (Pstructs.Mqueue.dequeue q ~tid:0);
  Alcotest.(check (option string)) "b" (Some "b") (Pstructs.Mqueue.dequeue q ~tid:0);
  Pstructs.Mqueue.enqueue q ~tid:0 "d";
  Alcotest.(check (option string)) "c" (Some "c") (Pstructs.Mqueue.dequeue q ~tid:0);
  Alcotest.(check (option string)) "d" (Some "d") (Pstructs.Mqueue.dequeue q ~tid:0);
  Alcotest.(check (option string)) "empty" None (Pstructs.Mqueue.dequeue q ~tid:0)

let test_queue_crash_recovery_order () =
  let region, esys = make_esys () in
  let q = Pstructs.Mqueue.create esys in
  for i = 1 to 10 do
    Pstructs.Mqueue.enqueue q ~tid:0 (Printf.sprintf "item%02d" i)
  done;
  (* consume three, then sync: recovered queue = items 4..10 *)
  for _ = 1 to 3 do
    ignore (Pstructs.Mqueue.dequeue q ~tid:0)
  done;
  E.sync esys ~tid:0;
  Pstructs.Mqueue.enqueue q ~tid:0 "lost";
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let q2 = Pstructs.Mqueue.recover esys2 payloads in
  Alcotest.(check int) "seven left" 7 (Pstructs.Mqueue.length q2);
  let order = List.init 7 (fun _ -> Option.get (Pstructs.Mqueue.dequeue q2 ~tid:0)) in
  Alcotest.(check (list string)) "FIFO order preserved"
    [ "item04"; "item05"; "item06"; "item07"; "item08"; "item09"; "item10" ]
    order

let test_queue_concurrent_producers_consumers () =
  let _, esys = make_esys () in
  let q = Pstructs.Mqueue.create esys in
  let produced = 400 and consumers_got = Atomic.make 0 in
  let producers =
    Array.init 2 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to (produced / 2) - 1 do
              Pstructs.Mqueue.enqueue q ~tid (Printf.sprintf "p%d-%d" tid i)
            done))
  in
  let consumers =
    Array.init 2 (fun i ->
        Domain.spawn (fun () ->
            let tid = i + 2 in
            let got = ref 0 in
            while Atomic.get consumers_got + 50 < produced do
              match Pstructs.Mqueue.dequeue q ~tid with
              | Some _ ->
                  incr got;
                  ignore (Atomic.fetch_and_add consumers_got 1)
              | None -> Domain.cpu_relax () (* empty poll: producers still filling *)
            done;
            !got))
  in
  Array.iter Domain.join producers;
  let from_consumers = Array.fold_left (fun acc d -> acc + Domain.join d) 0 consumers in
  let leftover = Pstructs.Mqueue.length q in
  Alcotest.(check int) "nothing lost or duplicated" produced (from_consumers + leftover)

(* ---- stack ---- *)

let test_stack_lifo () =
  let _, esys = make_esys () in
  let s = Pstructs.Mstack.create esys in
  List.iter (Pstructs.Mstack.push s ~tid:0) [ "x"; "y"; "z" ];
  Alcotest.(check (option string)) "top" (Some "z") (Pstructs.Mstack.top s ~tid:0);
  Alcotest.(check (option string)) "z" (Some "z") (Pstructs.Mstack.pop s ~tid:0);
  Alcotest.(check (option string)) "y" (Some "y") (Pstructs.Mstack.pop s ~tid:0);
  Alcotest.(check (option string)) "x" (Some "x") (Pstructs.Mstack.pop s ~tid:0);
  Alcotest.(check (option string)) "empty" None (Pstructs.Mstack.pop s ~tid:0)

let test_stack_crash_recovery () =
  let region, esys = make_esys () in
  let s = Pstructs.Mstack.create esys in
  List.iter (Pstructs.Mstack.push s ~tid:0) [ "bottom"; "middle"; "top" ];
  E.sync esys ~tid:0;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let s2 = Pstructs.Mstack.recover esys2 payloads in
  Alcotest.(check (option string)) "top first" (Some "top") (Pstructs.Mstack.pop s2 ~tid:0);
  Alcotest.(check (option string)) "then middle" (Some "middle") (Pstructs.Mstack.pop s2 ~tid:0);
  Alcotest.(check (option string)) "then bottom" (Some "bottom") (Pstructs.Mstack.pop s2 ~tid:0)

(* ---- nonblocking stack ---- *)

let test_nb_stack_sequential () =
  let _, esys = make_esys () in
  let s = Pstructs.Nb_stack.create esys in
  Pstructs.Nb_stack.push s ~tid:0 "1";
  Pstructs.Nb_stack.push s ~tid:0 "2";
  Alcotest.(check (option string)) "peek" (Some "2") (Pstructs.Nb_stack.top_value s);
  Alcotest.(check (option string)) "pop 2" (Some "2") (Pstructs.Nb_stack.pop s ~tid:0);
  Alcotest.(check (option string)) "pop 1" (Some "1") (Pstructs.Nb_stack.pop s ~tid:0);
  Alcotest.(check (option string)) "empty" None (Pstructs.Nb_stack.pop s ~tid:0)

let test_nb_stack_concurrent_balance () =
  let _, esys = make_esys () in
  let s = Pstructs.Nb_stack.create esys in
  let per = 300 in
  let pushers =
    Array.init 2 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Pstructs.Nb_stack.push s ~tid (Printf.sprintf "%d-%d" tid i)
            done))
  in
  Array.iter Domain.join pushers;
  let popped = Atomic.make 0 in
  let poppers =
    Array.init 2 (fun i ->
        Domain.spawn (fun () ->
            let tid = i + 2 in
            let continue = ref true in
            while !continue do
              match Pstructs.Nb_stack.pop s ~tid with
              | Some _ -> ignore (Atomic.fetch_and_add popped 1)
              | None -> continue := false
            done))
  in
  Array.iter Domain.join poppers;
  Alcotest.(check int) "all pushes popped" (2 * per) (Atomic.get popped)

let test_nb_stack_survives_epoch_advances () =
  let _, esys = make_esys () in
  let s = Pstructs.Nb_stack.create esys in
  let stop = Atomic.make false in
  let ops = Atomic.make 0 in
  (* progress-paced clock: tick once per observed batch of operations,
     never on wall time — epoch churn scales with the work instead of
     depending on a sleep racing the worker *)
  let ticker =
    Domain.spawn (fun () ->
        let last = ref (-1) in
        while not (Atomic.get stop) do
          let seen = Atomic.get ops in
          if seen <> !last then begin
            last := seen;
            E.advance_epoch esys ~tid:5
          end
          else Domain.cpu_relax ()
        done)
  in
  for i = 0 to 500 do
    Pstructs.Nb_stack.push s ~tid:0 (string_of_int i);
    Atomic.incr ops
  done;
  let count = ref 0 in
  while Pstructs.Nb_stack.pop s ~tid:0 <> None do
    incr count;
    Atomic.incr ops
  done;
  Atomic.set stop true;
  Domain.join ticker;
  Alcotest.(check int) "all pushed under epoch churn" 501 !count

let test_nb_stack_crash_recovery () =
  let region, esys = make_esys () in
  let s = Pstructs.Nb_stack.create esys in
  List.iter (Pstructs.Nb_stack.push s ~tid:0) [ "a"; "b"; "c" ];
  E.sync esys ~tid:0;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let s2 = Pstructs.Nb_stack.recover esys2 payloads in
  Alcotest.(check (option string)) "LIFO after crash" (Some "c") (Pstructs.Nb_stack.pop s2 ~tid:0);
  Alcotest.(check (option string)) "then b" (Some "b") (Pstructs.Nb_stack.pop s2 ~tid:0);
  Alcotest.(check (option string)) "then a" (Some "a") (Pstructs.Nb_stack.pop s2 ~tid:0)

(* ---- nonblocking queue ---- *)

let test_nb_queue_sequential () =
  let _, esys = make_esys () in
  let q = Pstructs.Nb_queue.create esys in
  Alcotest.(check bool) "starts empty" true (Pstructs.Nb_queue.is_empty q);
  Pstructs.Nb_queue.enqueue q ~tid:0 "a";
  Pstructs.Nb_queue.enqueue q ~tid:0 "b";
  Alcotest.(check (option string)) "peek" (Some "a") (Pstructs.Nb_queue.peek q);
  Alcotest.(check (option string)) "a" (Some "a") (Pstructs.Nb_queue.dequeue q ~tid:0);
  Alcotest.(check (option string)) "b" (Some "b") (Pstructs.Nb_queue.dequeue q ~tid:0);
  Alcotest.(check (option string)) "empty" None (Pstructs.Nb_queue.dequeue q ~tid:0)

let test_nb_queue_concurrent_no_loss () =
  let _, esys = make_esys () in
  let q = Pstructs.Nb_queue.create esys in
  let per = 250 in
  let producers =
    Array.init 2 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Pstructs.Nb_queue.enqueue q ~tid (Printf.sprintf "%d-%d" tid i)
            done))
  in
  Array.iter Domain.join producers;
  let seen = Hashtbl.create 64 in
  let rec drain () =
    match Pstructs.Nb_queue.dequeue q ~tid:2 with
    | Some v ->
        Alcotest.(check bool) "no duplicates" false (Hashtbl.mem seen v);
        Hashtbl.replace seen v ();
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check int) "all delivered" (2 * per) (Hashtbl.length seen)

let test_nb_queue_per_producer_order () =
  let _, esys = make_esys () in
  let q = Pstructs.Nb_queue.create esys in
  let per = 200 in
  let producers =
    Array.init 2 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Pstructs.Nb_queue.enqueue q ~tid (Printf.sprintf "%d:%d" tid i)
            done))
  in
  Array.iter Domain.join producers;
  (* FIFO implies each producer's items come out in order *)
  let last = Array.make 2 (-1) in
  let ok = ref true in
  let rec drain () =
    match Pstructs.Nb_queue.dequeue q ~tid:2 with
    | Some v ->
        Scanf.sscanf v "%d:%d" (fun tid i ->
            if i <= last.(tid) then ok := false;
            last.(tid) <- i);
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check bool) "per-producer order" true !ok

let test_nb_queue_crash_recovery () =
  let region, esys = make_esys () in
  let q = Pstructs.Nb_queue.create esys in
  for i = 1 to 5 do
    Pstructs.Nb_queue.enqueue q ~tid:0 (string_of_int i)
  done;
  ignore (Pstructs.Nb_queue.dequeue q ~tid:0);
  E.sync esys ~tid:0;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let q2 = Pstructs.Nb_queue.recover esys2 payloads in
  let order = List.init 4 (fun _ -> Option.get (Pstructs.Nb_queue.dequeue q2 ~tid:0)) in
  Alcotest.(check (list string)) "order after crash" [ "2"; "3"; "4"; "5" ] order

(* ---- vector ---- *)

let test_vector_push_pop_get_set () =
  let _, esys = make_esys () in
  let v = Pstructs.Mvector.create esys in
  Alcotest.(check int) "first index" 0 (Pstructs.Mvector.push v ~tid:0 "a");
  Alcotest.(check int) "second index" 1 (Pstructs.Mvector.push v ~tid:0 "b");
  Alcotest.(check (option string)) "get 0" (Some "a") (Pstructs.Mvector.get v ~tid:0 0);
  Alcotest.(check (option string)) "get out of range" None (Pstructs.Mvector.get v ~tid:0 5);
  Alcotest.(check bool) "set" true (Pstructs.Mvector.set v ~tid:0 0 "A");
  Alcotest.(check bool) "set out of range" false (Pstructs.Mvector.set v ~tid:0 9 "x");
  Alcotest.(check (option string)) "pop" (Some "b") (Pstructs.Mvector.pop v ~tid:0);
  Alcotest.(check (list string)) "contents" [ "A" ] (Pstructs.Mvector.to_list v ~tid:0);
  Alcotest.(check (option string)) "pop last" (Some "A") (Pstructs.Mvector.pop v ~tid:0);
  Alcotest.(check (option string)) "pop empty" None (Pstructs.Mvector.pop v ~tid:0)

let test_vector_growth () =
  let _, esys = make_esys () in
  let v = Pstructs.Mvector.create ~capacity:2 esys in
  for i = 0 to 499 do
    ignore (Pstructs.Mvector.push v ~tid:0 (string_of_int i))
  done;
  Alcotest.(check int) "length" 500 (Pstructs.Mvector.length v);
  Alcotest.(check (option string)) "spot check" (Some "123") (Pstructs.Mvector.get v ~tid:0 123)

let test_vector_crash_recovery () =
  let region, esys = make_esys () in
  let v = Pstructs.Mvector.create esys in
  for i = 0 to 9 do
    ignore (Pstructs.Mvector.push v ~tid:0 (Printf.sprintf "e%d" i))
  done;
  ignore (Pstructs.Mvector.pop v ~tid:0);
  ignore (Pstructs.Mvector.set v ~tid:0 3 "updated");
  E.sync esys ~tid:0;
  ignore (Pstructs.Mvector.push v ~tid:0 "lost");
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let v2 = Pstructs.Mvector.recover esys2 payloads in
  Alcotest.(check int) "nine elements" 9 (Pstructs.Mvector.length v2);
  Alcotest.(check (option string)) "update durable" (Some "updated") (Pstructs.Mvector.get v2 ~tid:0 3);
  Alcotest.(check (option string)) "order intact" (Some "e8") (Pstructs.Mvector.get v2 ~tid:0 8)

(* ---- adversarial crash injection on a structure ---- *)

(* The map must recover to the exact synced state even when the crash
   randomly persists unfenced write-backs and evicts dirty lines —
   real hardware's full nondeterminism. *)
let qcheck_map_recovery_under_injection =
  QCheck.Test.make ~name:"map recovery exact under write-back nondeterminism" ~count:25
    QCheck.(pair small_int (int_range 1 60))
    (fun (seed, ops) ->
      let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 22) () in
      let esys = E.create ~config:testing_cfg region in
      let m = Pstructs.Mhashmap.create ~buckets:32 esys in
      let rng = Util.Xoshiro.create seed in
      let model = Hashtbl.create 16 in
      for i = 1 to ops do
        let k = Pstruct_gen.rand_k2 rng in
        if Util.Xoshiro.bool rng then begin
          let v = Printf.sprintf "v%d" i in
          ignore (Pstructs.Mhashmap.put m ~tid:0 k v);
          Hashtbl.replace model k v
        end
        else begin
          ignore (Pstructs.Mhashmap.remove m ~tid:0 k);
          Hashtbl.remove model k
        end
      done;
      E.sync esys ~tid:0;
      (* noise after the sync, then an adversarial crash *)
      ignore (Pstructs.Mhashmap.put m ~tid:0 "noise" "x");
      ignore (Pstructs.Mhashmap.remove m ~tid:0 "k00");
      Nvm.Region.crash
        ~persist_unfenced:(Util.Xoshiro.float rng)
        ~evict_dirty:(Util.Xoshiro.float rng) ~rng region;
      let esys2, payloads = E.recover ~config:testing_cfg region in
      let m2 = Pstructs.Mhashmap.recover ~buckets:32 esys2 payloads in
      let expected = Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare in
      List.sort compare (Pstructs.Mhashmap.to_alist m2 ~tid:0) = expected)

(* ---- graph ---- *)

let test_graph_vertices_and_edges () =
  let _, esys = make_esys () in
  let g = Pstructs.Mgraph.create ~capacity:128 esys in
  Alcotest.(check bool) "add v1" true (Pstructs.Mgraph.add_vertex g ~tid:0 1 "alice");
  Alcotest.(check bool) "add v2" true (Pstructs.Mgraph.add_vertex g ~tid:0 2 "bob");
  Alcotest.(check bool) "duplicate vertex" false (Pstructs.Mgraph.add_vertex g ~tid:0 1 "dup");
  Alcotest.(check bool) "add edge" true (Pstructs.Mgraph.add_edge g ~tid:0 1 2 "friends");
  Alcotest.(check bool) "duplicate edge" false (Pstructs.Mgraph.add_edge g ~tid:0 2 1 "again");
  Alcotest.(check bool) "has edge both ways" true
    (Pstructs.Mgraph.has_edge g 1 2 && Pstructs.Mgraph.has_edge g 2 1);
  Alcotest.(check (option string)) "vertex attrs" (Some "alice") (Pstructs.Mgraph.vertex_attrs g ~tid:0 1);
  Alcotest.(check (option string)) "edge attrs" (Some "friends") (Pstructs.Mgraph.edge_attrs g ~tid:0 1 2);
  Alcotest.(check bool) "edge to missing vertex" false (Pstructs.Mgraph.add_edge g ~tid:0 1 99 "no");
  Alcotest.(check bool) "self edge rejected" false (Pstructs.Mgraph.add_edge g ~tid:0 1 1 "self");
  Alcotest.(check int) "counts" 2 (Pstructs.Mgraph.vertex_count g);
  Alcotest.(check int) "edges" 1 (Pstructs.Mgraph.edge_count g)

let test_graph_remove_vertex_clears_edges () =
  let _, esys = make_esys () in
  let g = Pstructs.Mgraph.create ~capacity:128 esys in
  for i = 0 to 4 do
    ignore (Pstructs.Mgraph.add_vertex g ~tid:0 i (string_of_int i))
  done;
  for i = 1 to 4 do
    ignore (Pstructs.Mgraph.add_edge g ~tid:0 0 i "spoke")
  done;
  Alcotest.(check int) "hub degree" 4 (Pstructs.Mgraph.degree g 0);
  Alcotest.(check bool) "remove hub" true (Pstructs.Mgraph.remove_vertex g ~tid:0 0);
  Alcotest.(check int) "no edges left" 0 (Pstructs.Mgraph.edge_count g);
  Alcotest.(check bool) "peer adjacency cleaned" false (Pstructs.Mgraph.has_edge g 1 0);
  Alcotest.(check int) "four vertices left" 4 (Pstructs.Mgraph.vertex_count g)

let test_graph_remove_edge () =
  let _, esys = make_esys () in
  let g = Pstructs.Mgraph.create ~capacity:16 esys in
  ignore (Pstructs.Mgraph.add_vertex g ~tid:0 1 "");
  ignore (Pstructs.Mgraph.add_vertex g ~tid:0 2 "");
  ignore (Pstructs.Mgraph.add_edge g ~tid:0 1 2 "e");
  Alcotest.(check bool) "remove" true (Pstructs.Mgraph.remove_edge g ~tid:0 2 1);
  Alcotest.(check bool) "gone" false (Pstructs.Mgraph.has_edge g 1 2);
  Alcotest.(check bool) "double remove" false (Pstructs.Mgraph.remove_edge g ~tid:0 1 2)

let test_graph_crash_recovery () =
  let region, esys = make_esys () in
  let g = Pstructs.Mgraph.create ~capacity:64 esys in
  for i = 0 to 9 do
    ignore (Pstructs.Mgraph.add_vertex g ~tid:0 i ("v" ^ string_of_int i))
  done;
  for i = 1 to 9 do
    ignore (Pstructs.Mgraph.add_edge g ~tid:0 0 i ("e" ^ string_of_int i))
  done;
  ignore (Pstructs.Mgraph.remove_edge g ~tid:0 0 5);
  E.sync esys ~tid:0;
  (* unsynced tail: must vanish *)
  ignore (Pstructs.Mgraph.remove_vertex g ~tid:0 0);
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let g2 = Pstructs.Mgraph.recover ~capacity:64 esys2 payloads in
  Alcotest.(check int) "vertices recovered" 10 (Pstructs.Mgraph.vertex_count g2);
  Alcotest.(check int) "edges recovered" 8 (Pstructs.Mgraph.edge_count g2);
  Alcotest.(check bool) "removed edge stays removed" false (Pstructs.Mgraph.has_edge g2 0 5);
  Alcotest.(check (option string)) "edge attrs intact" (Some "e3") (Pstructs.Mgraph.edge_attrs g2 ~tid:0 0 3);
  Alcotest.(check (option string)) "vertex attrs intact" (Some "v7")
    (Pstructs.Mgraph.vertex_attrs g2 ~tid:0 7)

let test_graph_parallel_recovery_matches_serial () =
  let region, esys = make_esys () in
  let g = Pstructs.Mgraph.create ~capacity:256 esys in
  let rng = Util.Xoshiro.create 99 in
  for i = 0 to 99 do
    ignore (Pstructs.Mgraph.add_vertex g ~tid:0 i "")
  done;
  for _ = 0 to 400 do
    let u = Util.Xoshiro.int rng 100 and v = Util.Xoshiro.int rng 100 in
    if u <> v then ignore (Pstructs.Mgraph.add_edge g ~tid:0 u v "")
  done;
  let edges_before = Pstructs.Mgraph.edge_count g in
  E.sync esys ~tid:0;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let g2 = Pstructs.Mgraph.recover ~capacity:256 ~threads:4 esys2 payloads in
  Alcotest.(check int) "vertices" 100 (Pstructs.Mgraph.vertex_count g2);
  Alcotest.(check int) "edges" edges_before (Pstructs.Mgraph.edge_count g2)

let test_graph_concurrent_edge_ops () =
  let _, esys = make_esys () in
  let g = Pstructs.Mgraph.create ~capacity:64 esys in
  for i = 0 to 31 do
    ignore (Pstructs.Mgraph.add_vertex g ~tid:0 i "")
  done;
  let domains =
    Array.init 4 (fun tid ->
        Domain.spawn (fun () ->
            let rng = Util.Xoshiro.create (tid * 7 + 1) in
            for _ = 0 to 500 do
              let u = Util.Xoshiro.int rng 32 and v = Util.Xoshiro.int rng 32 in
              if u <> v then
                if Util.Xoshiro.bool rng then ignore (Pstructs.Mgraph.add_edge g ~tid u v "")
                else ignore (Pstructs.Mgraph.remove_edge g ~tid u v)
            done))
  in
  Array.iter Domain.join domains;
  (* invariant: adjacency is symmetric *)
  let symmetric = ref true in
  for u = 0 to 31 do
    List.iter
      (fun v -> if not (Pstructs.Mgraph.has_edge g v u) then symmetric := false)
      (Pstructs.Mgraph.neighbors g u)
  done;
  Alcotest.(check bool) "adjacency symmetric" true !symmetric

let () =
  Alcotest.run "pstructs"
    [
      ( "hashmap",
        [
          Alcotest.test_case "put/get/remove" `Quick test_map_put_get_remove;
          Alcotest.test_case "put_if_absent" `Quick test_map_put_if_absent;
          Alcotest.test_case "collisions" `Quick test_map_size_and_collisions;
          Alcotest.test_case "concurrent disjoint" `Quick test_map_concurrent_disjoint_keys;
          Alcotest.test_case "concurrent same key" `Quick test_map_concurrent_same_key_last_writer;
          Alcotest.test_case "crash recovery" `Quick test_map_crash_recovery_preserves_synced;
          Alcotest.test_case "parallel recovery" `Quick test_map_parallel_recovery_matches;
          QCheck_alcotest.to_alcotest qcheck_map_vs_model;
        ] );
      ( "queue",
        [
          Alcotest.test_case "FIFO" `Quick test_queue_fifo;
          Alcotest.test_case "crash recovery order" `Quick test_queue_crash_recovery_order;
          Alcotest.test_case "concurrent produce/consume" `Quick test_queue_concurrent_producers_consumers;
        ] );
      ( "stack",
        [
          Alcotest.test_case "LIFO" `Quick test_stack_lifo;
          Alcotest.test_case "crash recovery" `Quick test_stack_crash_recovery;
        ] );
      ( "nb_stack",
        [
          Alcotest.test_case "sequential" `Quick test_nb_stack_sequential;
          Alcotest.test_case "concurrent balance" `Quick test_nb_stack_concurrent_balance;
          Alcotest.test_case "epoch churn" `Quick test_nb_stack_survives_epoch_advances;
          Alcotest.test_case "crash recovery" `Quick test_nb_stack_crash_recovery;
        ] );
      ( "nb_queue",
        [
          Alcotest.test_case "sequential" `Quick test_nb_queue_sequential;
          Alcotest.test_case "concurrent no loss" `Quick test_nb_queue_concurrent_no_loss;
          Alcotest.test_case "per-producer order" `Quick test_nb_queue_per_producer_order;
          Alcotest.test_case "crash recovery" `Quick test_nb_queue_crash_recovery;
        ] );
      ( "vector",
        [
          Alcotest.test_case "push/pop/get/set" `Quick test_vector_push_pop_get_set;
          Alcotest.test_case "growth" `Quick test_vector_growth;
          Alcotest.test_case "crash recovery" `Quick test_vector_crash_recovery;
        ] );
      ( "injection",
        [ QCheck_alcotest.to_alcotest qcheck_map_recovery_under_injection ] );
      ( "graph",
        [
          Alcotest.test_case "vertices and edges" `Quick test_graph_vertices_and_edges;
          Alcotest.test_case "remove vertex clears edges" `Quick test_graph_remove_vertex_clears_edges;
          Alcotest.test_case "remove edge" `Quick test_graph_remove_edge;
          Alcotest.test_case "crash recovery" `Quick test_graph_crash_recovery;
          Alcotest.test_case "parallel recovery" `Quick test_graph_parallel_recovery_matches_serial;
          Alcotest.test_case "concurrent edge ops" `Quick test_graph_concurrent_edge_ops;
        ] );
    ]
