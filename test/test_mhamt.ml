(* Tests for the persistent HAMT: functional behaviour (including
   collision leaves under degenerate hashes), snapshot isolation,
   qcheck model comparison with live views, a Wing–Gong
   linearizability check over real concurrent histories with snapshot
   ops, crash recovery (tombstones, superseded chains, pinned
   retirees, parallel decode, adversarial write-back injection), a
   Pcheck crash matrix, and Dsched exhaustive + PCT legs racing
   writers against a snapshotter on both advance arms. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config
module M = Pstructs.Mhamt
module R = Nvm.Region
module P = Nvm.Pcheck
module D = Dsched

let testing_cfg = { Cfg.testing with max_threads = 6 }

let make_esys ?(capacity = 1 lsl 24) () =
  let region = R.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity () in
  (region, E.create ~config:testing_cfg region)

let sorted_alist m = List.sort compare (M.to_alist m ~tid:0)

(* ---- functional ---- *)

let test_put_get_remove () =
  let _, esys = make_esys () in
  let m = M.create esys in
  Alcotest.(check (option string)) "empty get" None (M.get m ~tid:0 "k1");
  Alcotest.(check (option string)) "fresh put" None (M.put m ~tid:0 "k1" "v1");
  Alcotest.(check (option string)) "get back" (Some "v1") (M.get m ~tid:0 "k1");
  Alcotest.(check (option string)) "overwrite returns old" (Some "v1") (M.put m ~tid:0 "k1" "v2");
  Alcotest.(check (option string)) "updated" (Some "v2") (M.get m ~tid:0 "k1");
  Alcotest.(check bool) "contains" true (M.contains m ~tid:0 "k1");
  Alcotest.(check (option string)) "remove returns value" (Some "v2") (M.remove m ~tid:0 "k1");
  Alcotest.(check (option string)) "gone" None (M.get m ~tid:0 "k1");
  Alcotest.(check (option string)) "remove missing" None (M.remove m ~tid:0 "k1");
  Alcotest.(check int) "empty again" 0 (M.size m)

let test_put_if_absent_and_update () =
  let _, esys = make_esys () in
  let m = M.create esys in
  Alcotest.(check bool) "first wins" true (M.put_if_absent m ~tid:0 "k" "a");
  Alcotest.(check bool) "second loses" false (M.put_if_absent m ~tid:0 "k" "b");
  Alcotest.(check (option string)) "value is first" (Some "a") (M.get m ~tid:0 "k");
  Alcotest.(check (option string)) "update sees old" (Some "a")
    (M.update m ~tid:0 "k" (function Some s -> Some (s ^ "+") | None -> None));
  Alcotest.(check (option string)) "update applied" (Some "a+") (M.get m ~tid:0 "k");
  Alcotest.(check (option string)) "update absent no-insert" None
    (M.update m ~tid:0 "missing" (function Some _ -> Some "x" | None -> None));
  Alcotest.(check (option string)) "still absent" None (M.get m ~tid:0 "missing");
  Alcotest.(check (option string)) "update absent inserts" None
    (M.update m ~tid:0 "fresh" (fun _ -> Some "f"));
  Alcotest.(check (option string)) "inserted" (Some "f") (M.get m ~tid:0 "fresh")

let test_many_keys_deep_trie () =
  let _, esys = make_esys () in
  let m = M.create esys in
  for i = 0 to 299 do
    ignore (M.put m ~tid:0 (Pstruct_gen.key3 i) (string_of_int i))
  done;
  Alcotest.(check int) "size" 300 (M.size m);
  let ok = ref true in
  for i = 0 to 299 do
    if M.get m ~tid:0 (Pstruct_gen.key3 i) <> Some (string_of_int i) then ok := false
  done;
  Alcotest.(check bool) "all retrievable" true !ok;
  Alcotest.(check int) "listing complete" 300 (List.length (M.to_alist m ~tid:0))

(* Three hash values over 100 keys: every leaf is a collision leaf,
   and removes walk entry arrays rather than trie paths. *)
let test_collision_heavy () =
  let _, esys = make_esys () in
  let m = M.create ~hash:(Pstruct_gen.degenerate_hash 3) esys in
  for i = 0 to 99 do
    ignore (M.put m ~tid:0 (Pstruct_gen.key3 i) (string_of_int i))
  done;
  Alcotest.(check int) "size under collisions" 100 (M.size m);
  for i = 0 to 99 do
    if i mod 2 = 0 then
      Alcotest.(check (option string))
        ("remove " ^ Pstruct_gen.key3 i)
        (Some (string_of_int i))
        (M.remove m ~tid:0 (Pstruct_gen.key3 i))
  done;
  Alcotest.(check int) "half left" 50 (M.size m);
  let ok = ref true in
  for i = 0 to 99 do
    let expect = if i mod 2 = 0 then None else Some (string_of_int i) in
    if M.get m ~tid:0 (Pstruct_gen.key3 i) <> expect then ok := false
  done;
  Alcotest.(check bool) "survivors exact" true !ok

(* ---- snapshots ---- *)

let test_snapshot_isolation () =
  let _, esys = make_esys () in
  let m = M.create esys in
  for i = 0 to 4 do
    ignore (M.put m ~tid:0 (Pstruct_gen.k i) (Pstruct_gen.v i))
  done;
  let v = M.snapshot m in
  Alcotest.(check int) "view cardinal" 5 (M.View.cardinal v);
  for i = 0 to 4 do
    ignore (M.put m ~tid:0 (Pstruct_gen.k i) "new")
  done;
  ignore (M.remove m ~tid:0 "k0");
  ignore (M.put m ~tid:0 "extra" "e");
  (* the view is frozen at its version *)
  for i = 0 to 4 do
    Alcotest.(check (option string))
      ("view " ^ Pstruct_gen.k i)
      (Some (Pstruct_gen.v i))
      (M.View.find v ~tid:0 (Pstruct_gen.k i))
  done;
  Alcotest.(check (option string)) "view misses later insert" None (M.View.find v ~tid:0 "extra");
  Alcotest.(check bool) "view mem removed key" true (M.View.mem v "k0");
  (* the current map moved on *)
  Alcotest.(check (option string)) "current overwritten" (Some "new") (M.get m ~tid:0 "k1");
  Alcotest.(check (option string)) "current removed" None (M.get m ~tid:0 "k0");
  (* retired blocks are pinned until the view is released *)
  Alcotest.(check bool) "retired pinned" true (M.pending_reclaim m > 0);
  M.release m v ~tid:0;
  Alcotest.(check int) "released => reclaimed" 0 (M.pending_reclaim m);
  Alcotest.(check bool) "released view rejects reads" true
    (match M.View.find v ~tid:0 "k1" with
    | exception Invalid_argument _ -> true
    | _ -> false);
  (* double release is a no-op *)
  M.release m v ~tid:0

let test_snapshots_pin_independently () =
  let _, esys = make_esys () in
  let m = M.create esys in
  ignore (M.put m ~tid:0 "k" "v1");
  let s1 = M.snapshot m in
  ignore (M.put m ~tid:0 "k" "v2");
  let s2 = M.snapshot m in
  ignore (M.put m ~tid:0 "k" "v3");
  Alcotest.(check (option string)) "s1 sees v1" (Some "v1") (M.View.find s1 ~tid:0 "k");
  Alcotest.(check (option string)) "s2 sees v2" (Some "v2") (M.View.find s2 ~tid:0 "k");
  Alcotest.(check (option string)) "current sees v3" (Some "v3") (M.get m ~tid:0 "k");
  Alcotest.(check bool) "two retirees pinned" true (M.pending_reclaim m >= 2);
  (* releasing the newer view alone keeps the older one's world intact *)
  M.release m s2 ~tid:0;
  Alcotest.(check (option string)) "s1 still sees v1" (Some "v1") (M.View.find s1 ~tid:0 "k");
  Alcotest.(check bool) "v1 still pinned" true (M.pending_reclaim m >= 1);
  M.release m s1 ~tid:0;
  Alcotest.(check int) "all reclaimed" 0 (M.pending_reclaim m);
  Alcotest.(check bool) "versions are ordered" true (M.View.version s1 < M.View.version s2)

(* snapshot <> sync: a held view must not stop the epoch clock, sync,
   or subsequent durability — it only defers physical reclamation. *)
let test_snapshot_never_blocks_advance () =
  let _, esys = make_esys () in
  let m = M.create esys in
  ignore (M.put m ~tid:0 "k" "v1");
  let v = M.snapshot m in
  let e0 = E.current_epoch esys in
  for _ = 1 to 10 do
    E.advance_epoch esys ~tid:0
  done;
  Alcotest.(check bool) "epochs advanced under a live view" true (E.current_epoch esys >= e0 + 10);
  ignore (M.put m ~tid:0 "k" "v2");
  E.sync esys ~tid:0;
  Alcotest.(check bool) "sync completed under a live view" true
    (E.persisted_epoch esys >= e0 + 10);
  Alcotest.(check (option string)) "view unaffected" (Some "v1") (M.View.find v ~tid:0 "k");
  M.release m v ~tid:0

(* ---- qcheck: model comparison with live views ---- *)

(* Random op streams against a Hashtbl model; snapshots freeze a copy
   of the model and every live view must keep matching its frozen copy
   while the run mutates on.  [collide] swaps in a 3-value hash so the
   same scripts drive collision leaves. *)
let qcheck_vs_model_with_snapshots =
  QCheck.Test.make ~name:"mhamt matches model; views match frozen copies" ~count:30
    QCheck.(pair bool (list (pair (int_range 0 20) small_string)))
    (fun (collide, script) ->
      let _, esys = make_esys ~capacity:(1 lsl 22) () in
      let hash = if collide then Pstruct_gen.degenerate_hash 3 else Hashtbl.hash in
      let m = M.create ~hash esys in
      let model = Hashtbl.create 16 in
      let views = ref [] in
      let step (k, v) =
        let key = Pstruct_gen.num_key k in
        match String.length v mod 4 with
        | 0 ->
            let expected = Hashtbl.find_opt model key in
            Hashtbl.remove model key;
            M.remove m ~tid:0 key = expected
        | 1 ->
            (* snapshot now; release the oldest once three are live *)
            let frozen = Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] in
            views := !views @ [ (M.snapshot m, List.sort compare frozen) ];
            (match !views with
            | (v, _) :: rest when List.length !views > 3 ->
                M.release m v ~tid:0;
                views := rest
            | _ -> ());
            true
        | _ ->
            let expected = Hashtbl.find_opt model key in
            Hashtbl.replace model key v;
            M.put m ~tid:0 key v = expected
      in
      let ops_ok = List.for_all step script in
      let views_ok =
        List.for_all
          (fun (v, frozen) -> List.sort compare (M.View.to_alist v ~tid:0) = frozen)
          !views
      in
      let final_ok =
        sorted_alist m
        = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
      in
      List.iter (fun (v, _) -> M.release m v ~tid:0) !views;
      ops_ok && views_ok && final_ok && M.pending_reclaim m = 0)

(* ---- real concurrency ---- *)

let test_concurrent_disjoint_writers () =
  let _, esys = make_esys () in
  let m = M.create esys in
  let per = 200 in
  let domains =
    Array.init 4 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (M.put m ~tid (Pstruct_gen.tid_key tid i) "x")
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "all inserted" (4 * per) (M.size m)

(* The acceptance criterion: a view taken mid-run returns exactly the
   pre-snapshot value for every key while >= 2 writer domains mutate.
   Phase A writes known values and joins; the snapshot is taken; phase
   B overwrites the same keys from two domains while a checker domain
   folds the view over and over — every fold of every iteration must
   see the full phase-A state, nothing torn, nothing newer. *)
let test_view_exact_under_concurrent_writers () =
  let _, esys = make_esys () in
  let m = M.create esys in
  let keys = 64 in
  let a_writers =
    Array.init 2 (fun d ->
        Domain.spawn (fun () ->
            let tid = d + 1 in
            for i = 0 to (keys / 2) - 1 do
              let k = (d * keys / 2) + i in
              ignore (M.put m ~tid (Pstruct_gen.key3 k) ("A" ^ string_of_int k))
            done))
  in
  Array.iter Domain.join a_writers;
  let v = M.snapshot m in
  let stop = Atomic.make false in
  let checker =
    Domain.spawn (fun () ->
        let folds = ref 0 in
        let clean = ref true in
        while (not (Atomic.get stop)) || !folds = 0 do
          let seen = M.View.fold v ~tid:3 (fun acc k value -> (k, value) :: acc) [] in
          if
            List.length seen <> keys
            || not
                 (List.for_all
                    (fun (k, value) ->
                      String.length k = 6 && value = "A" ^ string_of_int (int_of_string (String.sub k 3 3)))
                    seen)
          then clean := false;
          incr folds
        done;
        (!folds, !clean))
  in
  let b_writers =
    Array.init 2 (fun d ->
        Domain.spawn (fun () ->
            let tid = d + 1 in
            for round = 0 to 19 do
              for i = 0 to keys - 1 do
                ignore (M.put m ~tid (Pstruct_gen.key3 i) (Printf.sprintf "B%d:%d:%d" d round i))
              done
            done))
  in
  Array.iter Domain.join b_writers;
  Atomic.set stop true;
  let folds, clean = Domain.join checker in
  Alcotest.(check bool) "checker folded at least once" true (folds > 0);
  Alcotest.(check bool) "every fold saw exactly the pre-snapshot state" true clean;
  Alcotest.(check bool) "current map moved to phase B" true
    (match M.get m ~tid:0 (Pstruct_gen.key3 0) with Some s -> s.[0] = 'B' | None -> false);
  M.release m v ~tid:0;
  Alcotest.(check int) "all retirees reclaimed after release" 0 (M.pending_reclaim m)

(* Wing–Gong check over a real concurrent history containing snapshot
   and view ops: two writer domains race a snapshotter; the recorded
   events must admit a linearization under the map-with-snapshot spec
   (satellite: no view may observe a torn path copy). *)
let test_linearizable_history_with_snapshots () =
  let _, esys = make_esys () in
  let m = M.create esys in
  Lin_check.reset_clock ();
  let events = Array.make 3 [] in
  let writer d =
    Domain.spawn (fun () ->
        let tid = d + 1 in
        let k = "shared" and mine = Pstruct_gen.k d in
        events.(d) <-
          [
            Lin_check.record (Lin_check.Mput (k, Pstruct_gen.v d)) (fun () ->
                M.put m ~tid k (Pstruct_gen.v d));
            Lin_check.record (Lin_check.Mput (mine, "x")) (fun () -> M.put m ~tid mine "x");
            Lin_check.record (Lin_check.Mget k) (fun () -> M.get m ~tid k);
            Lin_check.record (Lin_check.Mremove mine) (fun () -> M.remove m ~tid mine);
          ])
  in
  let snapper =
    Domain.spawn (fun () ->
        let tid = 3 in
        let sv = ref None in
        let ev0 =
          Lin_check.record (Lin_check.Msnapshot 0) (fun () ->
              sv := Some (M.snapshot m);
              None)
        in
        let v = Option.get !sv in
        let evs =
          List.map
            (fun k ->
              Lin_check.record (Lin_check.Mview_find (0, k)) (fun () -> M.View.find v ~tid k))
            [ "shared"; "k0"; "k1" ]
        in
        M.release m v ~tid;
        events.(2) <- ev0 :: evs)
  in
  let w0 = writer 0 and w1 = writer 1 in
  Domain.join w0;
  Domain.join w1;
  Domain.join snapper;
  let all = List.concat (Array.to_list events) in
  Alcotest.(check bool) "history linearizable under map+snapshot spec" true
    (Lin_check.check Lin_check.map_snap_spec all)

(* ---- crash recovery ---- *)

let test_crash_recovery_preserves_synced () =
  let region, esys = make_esys () in
  let m = M.create esys in
  for i = 0 to 49 do
    ignore (M.put m ~tid:0 (Pstruct_gen.k i) (Pstruct_gen.v i))
  done;
  ignore (M.remove m ~tid:0 "k7");
  E.sync esys ~tid:0;
  (* post-sync writes are lost by the crash *)
  ignore (M.put m ~tid:0 "late" "update");
  ignore (M.remove m ~tid:0 "k0");
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let m2 = M.recover esys2 payloads in
  Alcotest.(check int) "synced contents recovered" 49 (M.size m2);
  Alcotest.(check (option string)) "k0 still there (remove rolled back)" (Some "v0")
    (M.get m2 ~tid:0 "k0");
  Alcotest.(check (option string)) "synced remove durable (tombstone)" None (M.get m2 ~tid:0 "k7");
  Alcotest.(check (option string)) "late insert lost" None (M.get m2 ~tid:0 "late")

(* The superseded-version chain: only the largest synced seq wins. *)
let test_crash_recovery_overwrite_chain () =
  let region, esys = make_esys () in
  let m = M.create esys in
  ignore (M.put m ~tid:0 "k" "v1");
  E.sync esys ~tid:0;
  (* pin v1 so its block is still in media when the crash hits —
     without the pin the overwrite reclaims it immediately *)
  let _pin = M.snapshot m in
  ignore (M.put m ~tid:0 "k" "v2");
  E.sync esys ~tid:0;
  ignore (M.put m ~tid:0 "k" "v3");
  (* v3 buffered only *)
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let m2 = M.recover esys2 payloads in
  Alcotest.(check (option string)) "last synced version wins" (Some "v2") (M.get m2 ~tid:0 "k");
  Alcotest.(check int) "one live key" 1 (M.size m2);
  (* the losing v1 block was queued; the first mutation reclaims it *)
  Alcotest.(check bool) "superseded block queued" true (M.pending_reclaim m2 > 0);
  ignore (M.put m2 ~tid:0 "other" "x");
  Alcotest.(check int) "reclaimed on first mutation" 0 (M.pending_reclaim m2)

(* A snapshot pins the old version's bytes across sync and crash; the
   recovered map must still resolve the newest seq, and the view
   itself — transient by construction — died with the crash. *)
let test_crash_with_pinned_retirees () =
  let region, esys = make_esys () in
  let m = M.create esys in
  ignore (M.put m ~tid:0 "k" "v1");
  let v = M.snapshot m in
  ignore (M.put m ~tid:0 "k" "v2");
  Alcotest.(check (option string)) "view pins v1" (Some "v1") (M.View.find v ~tid:0 "k");
  E.sync esys ~tid:0;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let m2 = M.recover esys2 payloads in
  Alcotest.(check (option string)) "newest seq wins over pinned block" (Some "v2")
    (M.get m2 ~tid:0 "k");
  Alcotest.(check int) "one key" 1 (M.size m2)

let test_parallel_recovery_matches () =
  let region, esys = make_esys () in
  let m = M.create esys in
  for i = 0 to 199 do
    ignore (M.put m ~tid:0 (Pstruct_gen.k3 i) (string_of_int (i * i)))
  done;
  for i = 0 to 199 do
    if i mod 5 = 0 then ignore (M.remove m ~tid:0 (Pstruct_gen.k3 i))
  done;
  E.sync esys ~tid:0;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let m2 = M.recover ~threads:4 esys2 payloads in
  Alcotest.(check int) "all pairs" 160 (M.size m2);
  let expected =
    List.filter_map
      (fun i -> if i mod 5 = 0 then None else Some (Pstruct_gen.k3 i, string_of_int (i * i)))
      (List.init 200 Fun.id)
  in
  Alcotest.(check bool) "contents identical" true (sorted_alist m2 = List.sort compare expected)

(* Exact recovery under adversarial write-back nondeterminism, with a
   live view pinning blocks at the crash instant. *)
let qcheck_recovery_under_injection =
  QCheck.Test.make ~name:"mhamt recovery exact under write-back nondeterminism" ~count:25
    QCheck.(pair small_int (int_range 1 60))
    (fun (seed, ops) ->
      let region =
        R.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 22) ()
      in
      let esys = E.create ~config:testing_cfg region in
      let m = M.create esys in
      let rng = Util.Xoshiro.create seed in
      let model = Hashtbl.create 16 in
      for i = 1 to ops do
        let k = Pstruct_gen.rand_k2 rng in
        if Util.Xoshiro.bool rng then begin
          let v = Pstruct_gen.v i in
          ignore (M.put m ~tid:0 k v);
          Hashtbl.replace model k v
        end
        else begin
          ignore (M.remove m ~tid:0 k);
          Hashtbl.remove model k
        end
      done;
      let _pin = M.snapshot m in
      E.sync esys ~tid:0;
      (* noise after the sync, then an adversarial crash *)
      ignore (M.put m ~tid:0 "noise" "x");
      ignore (M.remove m ~tid:0 "k00");
      Nvm.Region.crash
        ~persist_unfenced:(Util.Xoshiro.float rng)
        ~evict_dirty:(Util.Xoshiro.float rng) ~rng region;
      let esys2, payloads = E.recover ~config:testing_cfg region in
      let m2 = M.recover esys2 payloads in
      let expected = Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare in
      List.sort compare (M.to_alist m2 ~tid:0) = expected)

(* ---- Pcheck crash matrix ---- *)

let matrix_cfg = { Cfg.testing with max_threads = 4 }
let recover_cfg = { matrix_cfg with Cfg.pcheck = Cfg.Pcheck_off }

let logged_esys () =
  let region = R.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 18) () in
  let c = R.enable_pcheck ~mode:P.Enforce ~log_events:true region in
  (region, c, E.create ~config:matrix_cfg region)

(* [P.explore] enumerates fence-respecting media states at EVERY point
   of the run, so early cuts legitimately recover earlier (even empty)
   states.  The durability claim is conditional on the recovered clock:
   once an image's persisted clock has reached the value observed right
   after the ack ([E.sync]), recovery MUST reproduce the acked state
   exactly — inserts present, the acked remove absent (tombstone), the
   overwritten loser never resurrected.  Pre-ack cuts must still be
   internally consistent subsets of what was written. *)
let test_crash_matrix_acked_writes_durable () =
  let _, c, esys = logged_esys () in
  let m = M.create esys in
  for i = 0 to 5 do
    ignore (M.put m ~tid:0 (Pstruct_gen.k i) ("a" ^ string_of_int i))
  done;
  ignore (M.put m ~tid:0 "k2" "a2'");
  ignore (M.remove m ~tid:0 "k5");
  E.sync esys ~tid:0;
  let e_ack = E.current_epoch esys in
  E.advance_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:0;
  let expected =
    List.sort compare
      [ ("k0", "a0"); ("k1", "a1"); ("k2", "a2'"); ("k3", "a3"); ("k4", "a4") ]
  in
  let valid (k, value) =
    match k with
    | "k2" -> value = "a2" || value = "a2'"
    | "k0" | "k1" | "k3" | "k4" | "k5" -> value = "a" ^ String.sub k 1 (String.length k - 1)
    | _ -> false
  in
  let exact_states = ref 0 in
  let report =
    P.explore ~max_states:400 c (fun image ->
        match
          E.recover ~config:recover_cfg (R.of_image ~latency:Nvm.Latency.zero ~max_threads:8 image)
        with
        | exception _ -> false
        | esys2, payloads ->
            let m2 = M.recover esys2 payloads in
            let listed = List.sort compare (M.to_alist m2 ~tid:0) in
            if E.current_epoch esys2 >= e_ack then begin
              if listed = expected then incr exact_states;
              listed = expected
            end
            else M.size m2 = List.length listed && List.for_all valid listed)
  in
  Alcotest.(check bool) "states explored" true (report.P.states > 0);
  Alcotest.(check int) "every crash state consistent; acked states exact" 0 report.P.failures;
  Alcotest.(check bool) "at least one post-ack state enumerated" true (!exact_states > 0)

(* Unsynced tail: every crash state recovers to SOME consistent cut —
   each key resolves to one of the values actually written to it (or
   absence where a remove ran), never a torn or invented value, and
   the synced prefix is always included.  A live view at the crash
   instant pins retired blocks in media; winners-by-seq must shrug
   them off.  "Views die with the crash": only payload records drive
   recovery, so the pinned v-old values may appear solely as a key's
   legitimate earlier value, never resurrect a removed key, and the
   recovered map starts with no view registry. *)
let test_crash_matrix_unsynced_tail_consistent () =
  let _, c, esys = logged_esys () in
  let m = M.create esys in
  for i = 0 to 5 do
    ignore (M.put m ~tid:0 (Pstruct_gen.k i) ("a" ^ string_of_int i))
  done;
  E.sync esys ~tid:0;
  let _pin = M.snapshot m in
  for i = 0 to 5 do
    ignore (M.put m ~tid:0 (Pstruct_gen.k i) ("b" ^ string_of_int i))
  done;
  ignore (M.remove m ~tid:0 "k5");
  let e_ack = E.current_epoch esys in
  E.advance_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:0;
  let report =
    P.explore ~max_states:400 c (fun image ->
        match
          E.recover ~config:recover_cfg (R.of_image ~latency:Nvm.Latency.zero ~max_threads:8 image)
        with
        | exception _ -> false
        | esys2, payloads ->
            let m2 = M.recover esys2 payloads in
            let listed = List.sort compare (M.to_alist m2 ~tid:0) in
            let acked = E.current_epoch esys2 >= e_ack in
            M.size m2 = List.length listed
            && List.for_all
                 (fun i ->
                   let k = Pstruct_gen.k i in
                   match List.assoc_opt k listed with
                   | Some s -> s = "a" ^ string_of_int i || s = "b" ^ string_of_int i
                   | None ->
                       (* pre-ack cuts may miss keys; once the synced
                          prefix is durable only the removed key may go *)
                       (not acked) || i = 5)
                 [ 0; 1; 2; 3; 4; 5 ]
            && List.for_all (fun (k, _) -> List.mem k [ "k0"; "k1"; "k2"; "k3"; "k4"; "k5" ]) listed)
  in
  Alcotest.(check bool) "states explored" true (report.P.states > 0);
  Alcotest.(check int) "every crash state recovers consistently" 0 report.P.failures

(* ---- Dsched: racing writers and a snapshotter, both advance arms ---- *)

let sched_cfg =
  {
    Cfg.testing with
    max_threads = 2;
    pcheck = Cfg.Pcheck_off;
    drain_domains = 1;
    payload_mirror = false;
    buffer_size = 16;
  }

let blocking_cfg = { sched_cfg with Cfg.nb_advance = false }
let nb_cfg = { sched_cfg with Cfg.nb_advance = true }

type wop = Wput of string * string | Wremove of string | Wget of string

type mstate = {
  region : R.t;
  esys : E.t;
  m : M.t;
  hist : (Lin_check.map_op * string option * int) list ref array;
  inflight : Lin_check.map_op option array;
}

let durable_op op epoch cutoff =
  match op with
  | Lin_check.Mput _ | Lin_check.Mremove _ -> epoch <= cutoff
  | Lin_check.Mget _ | Lin_check.Msnapshot _ | Lin_check.Mview_find _ -> false

let dlin_spec =
  { Dlin.initial = Lin_check.map_snap_spec.Lin_check.initial;
    apply = Lin_check.map_snap_spec.Lin_check.apply }

(* Writer fibers run op scripts; the last fiber snapshots, reads the
   view twice, and releases (driving reclamation through the scheduler).
   After every op each fiber records (op, result, epoch) and advances
   the epoch, so crash branches cut through every buffering stage. *)
let mhamt_scenario ?(cfg = sched_cfg) scripts view_keys =
  let n = Array.length scripts in
  let total = n + 1 in
  let op_threads =
    Array.mapi
      (fun tid script st ->
        List.iter
          (fun op ->
            let lop, run =
              match op with
              | Wput (k, v) -> (Lin_check.Mput (k, v), fun () -> M.put st.m ~tid k v)
              | Wremove k -> (Lin_check.Mremove k, fun () -> M.remove st.m ~tid k)
              | Wget k -> (Lin_check.Mget k, fun () -> M.get st.m ~tid k)
            in
            st.inflight.(tid) <- Some lop;
            let res = run () in
            st.hist.(tid) := (lop, res, E.current_epoch st.esys) :: !(st.hist.(tid));
            st.inflight.(tid) <- None;
            E.advance_epoch st.esys ~tid)
          script)
      scripts
  in
  let snap_thread st =
    let tid = n in
    st.inflight.(tid) <- Some (Lin_check.Msnapshot 0);
    let v = M.snapshot st.m in
    st.hist.(tid) := (Lin_check.Msnapshot 0, None, E.current_epoch st.esys) :: !(st.hist.(tid));
    st.inflight.(tid) <- None;
    List.iter
      (fun k ->
        let lop = Lin_check.Mview_find (0, k) in
        st.inflight.(tid) <- Some lop;
        let res = M.View.find v ~tid k in
        st.hist.(tid) := (lop, res, E.current_epoch st.esys) :: !(st.hist.(tid));
        st.inflight.(tid) <- None)
      view_keys;
    M.release st.m v ~tid;
    E.advance_epoch st.esys ~tid
  in
  {
    D.init =
      (fun () ->
        let region =
          R.create ~latency:Nvm.Latency.zero ~max_threads:(total + 2) ~capacity:(1 lsl 18) ()
        in
        let esys = E.create ~config:{ cfg with Cfg.max_threads = total } region in
        {
          region;
          esys;
          m = M.create esys;
          hist = Array.init total (fun _ -> ref []);
          inflight = Array.make total None;
        });
    threads = Array.append op_threads [| snap_thread |];
    check_crash =
      Some
        (fun st ->
          R.crash st.region;
          match E.recover ~config:{ cfg with Cfg.max_threads = total } st.region with
          | exception _ -> false
          | esys2, payloads ->
              let recovered = List.sort compare (M.to_alist (M.recover esys2 payloads) ~tid:0) in
              let cutoff = E.current_epoch esys2 - 2 in
              let obs =
                Array.mapi
                  (fun i h ->
                    {
                      Dlin.completed =
                        List.rev_map (fun (op, res, e) -> (op, res, durable_op op e cutoff)) !h;
                      in_flight = st.inflight.(i);
                    })
                  st.hist
              in
              Dlin.durably_linearizable dlin_spec obs ~accept:(fun st ->
                  st.Lin_check.cur = recovered));
    check_done =
      Some
        (fun st ->
          let final = List.sort compare (M.to_alist st.m ~tid:0) in
          let hists = Array.map (fun h -> List.rev_map (fun (op, res, _) -> (op, res)) !h) st.hist in
          Dlin.linearizable dlin_spec hists ~accept:(fun st -> st.Lin_check.cur = final));
  }

(* two writers race on a shared key and disjoint keys; the snapshotter
   reads both *)
let wscripts = [| [ Wput ("s", "a"); Wput ("x", "1"); Wremove ("s") ]; [ Wput ("s", "b"); Wget "x" ] |]
let vkeys = [ "s"; "x" ]

let exhaustive ?(preemptions = 1) ?(max_attempts = 200_000) ?(crashes = true) () =
  D.Exhaustive { preemptions; max_attempts; crashes }

let check_report name r =
  (match r.D.failure with
  | Some f -> Alcotest.fail (name ^ ": " ^ D.failure_to_string f)
  | None -> ());
  Printf.eprintf "%s: schedules=%d crash_branches=%d max_points=%d\n%!" name r.D.schedules
    r.D.crash_branches r.D.max_points;
  Alcotest.(check bool) (name ^ ": schedules explored") true (r.D.schedules > 0);
  Alcotest.(check bool) (name ^ ": crash injected at every point") true
    (r.D.crash_branches >= r.D.max_points)

let test_dsched_exhaustive_nb () =
  check_report "mhamt nb arm"
    (D.explore (exhaustive ()) (mhamt_scenario ~cfg:nb_cfg wscripts vkeys))

let test_dsched_exhaustive_blocking () =
  check_report "mhamt blocking arm"
    (D.explore (exhaustive ()) (mhamt_scenario ~cfg:blocking_cfg wscripts vkeys))

(* The CI leg: MONTAGE_SCHED=random MONTAGE_SCHED_RUNS=N sweeps this
   scenario with seeded PCT; without the env a modest PCT pass runs. *)
let test_dsched_env_mode_sweep () =
  let mode =
    match D.mode_from_env () with
    | Some m -> m
    | None -> D.Pct { runs = 50; seed = 20260809; change_points = 3 }
  in
  List.iter
    (fun (name, cfg) ->
      match D.explore mode (mhamt_scenario ~cfg wscripts vkeys) with
      | { D.failure = Some f; _ } -> Alcotest.fail (name ^ ": " ^ D.failure_to_string f)
      | _ -> ())
    [ ("nb", nb_cfg); ("blocking", blocking_cfg) ]

let () =
  Alcotest.run "mhamt"
    [
      ( "functional",
        [
          Alcotest.test_case "put/get/remove" `Quick test_put_get_remove;
          Alcotest.test_case "put_if_absent and update" `Quick test_put_if_absent_and_update;
          Alcotest.test_case "many keys, deep trie" `Quick test_many_keys_deep_trie;
          Alcotest.test_case "collision-heavy hash" `Quick test_collision_heavy;
        ] );
      ( "snapshots",
        [
          Alcotest.test_case "snapshot isolation" `Quick test_snapshot_isolation;
          Alcotest.test_case "snapshots pin independently" `Quick test_snapshots_pin_independently;
          Alcotest.test_case "snapshot never blocks advance" `Quick
            test_snapshot_never_blocks_advance;
          QCheck_alcotest.to_alcotest qcheck_vs_model_with_snapshots;
        ] );
      ( "concurrency",
        [
          Alcotest.test_case "concurrent disjoint writers" `Quick test_concurrent_disjoint_writers;
          Alcotest.test_case "view exact under concurrent writers" `Quick
            test_view_exact_under_concurrent_writers;
          Alcotest.test_case "history with snapshots linearizable" `Quick
            test_linearizable_history_with_snapshots;
        ] );
      ( "crash recovery",
        [
          Alcotest.test_case "synced contents preserved" `Quick
            test_crash_recovery_preserves_synced;
          Alcotest.test_case "overwrite chain" `Quick test_crash_recovery_overwrite_chain;
          Alcotest.test_case "pinned retirees" `Quick test_crash_with_pinned_retirees;
          Alcotest.test_case "parallel recovery" `Quick test_parallel_recovery_matches;
          QCheck_alcotest.to_alcotest qcheck_recovery_under_injection;
        ] );
      ( "crash matrix",
        [
          Alcotest.test_case "acked writes durable" `Quick test_crash_matrix_acked_writes_durable;
          Alcotest.test_case "unsynced tail consistent" `Quick
            test_crash_matrix_unsynced_tail_consistent;
        ] );
      ( "dsched",
        [
          Alcotest.test_case "exhaustive, nb arm" `Slow test_dsched_exhaustive_nb;
          Alcotest.test_case "exhaustive, blocking arm" `Slow test_dsched_exhaustive_blocking;
          Alcotest.test_case "env-mode sweep" `Quick test_dsched_env_mode_sweep;
        ] );
    ]
