(* Unit tests for the Montage runtime internals: the per-thread
   write-back ring, the operation tracker, the mindicator, the payload
   header codec, and the typed payload codecs. *)

module PB = Montage.Persist_buffer
module T = Montage.Tracker
module M = Montage.Mindicator
module H = Montage.Payload_hdr
module P = Montage.Payload

(* ---- persist buffer ---- *)

let test_pb_fifo () =
  let b = PB.create ~capacity:8 in
  Alcotest.(check bool) "empty" true (PB.is_empty b);
  PB.push b ~flush:(fun _ _ -> Alcotest.fail "no overflow expected") ~off:64 ~len:10;
  PB.push b ~flush:(fun _ _ -> Alcotest.fail "no overflow expected") ~off:128 ~len:20;
  Alcotest.(check (option (pair int int))) "first" (Some (64, 10)) (PB.pop b);
  Alcotest.(check (option (pair int int))) "second" (Some (128, 20)) (PB.pop b);
  Alcotest.(check (option (pair int int))) "drained" None (PB.pop b)

let test_pb_overflow_flushes_oldest () =
  let b = PB.create ~capacity:4 in
  let flushed = ref [] in
  let flush off len = flushed := (off, len) :: !flushed in
  for i = 1 to 4 do
    PB.push b ~flush ~off:(i * 64) ~len:i
  done;
  Alcotest.(check (list (pair int int))) "no overflow yet" [] !flushed;
  PB.push b ~flush ~off:320 ~len:5;
  Alcotest.(check (list (pair int int))) "oldest written back" [ (64, 1) ] !flushed;
  (* remaining entries still pop in order *)
  Alcotest.(check (option (pair int int))) "next oldest" (Some (128, 2)) (PB.pop b)

let test_pb_oversized_range_rejected () =
  (* lengths beyond the 14-bit packed field must raise, not silently
     truncate into a corrupt entry *)
  let b = PB.create ~capacity:8 in
  PB.push b ~flush:(fun _ _ -> ()) ~off:64 ~len:PB.max_len;
  Alcotest.(check (option (pair int int))) "max length packs exactly" (Some (64, PB.max_len))
    (PB.pop b);
  let check_raises len =
    match PB.push b ~flush:(fun _ _ -> ()) ~off:64 ~len with
    | () -> Alcotest.failf "push accepted len %d" len
    | exception Invalid_argument _ -> ()
  in
  check_raises (PB.max_len + 1);
  check_raises (-1);
  Alcotest.(check bool) "rejected pushes left no entry" true (PB.is_empty b)

let test_pb_drain () =
  let b = PB.create ~capacity:16 in
  for i = 1 to 10 do
    PB.push b ~flush:(fun _ _ -> ()) ~off:(i * 64) ~len:i
  done;
  let seen = ref 0 in
  PB.drain b (fun _ _ -> incr seen);
  Alcotest.(check int) "all entries" 10 !seen;
  Alcotest.(check bool) "empty after drain" true (PB.is_empty b)

let test_pb_concurrent_consumer () =
  (* producer pushes while a consumer drains: every entry is seen
     exactly once across consumer pops and overflow flushes *)
  let b = PB.create ~capacity:8 in
  let total = 20_000 in
  let consumed = Atomic.make 0 in
  let flushed = Atomic.make 0 in
  let consumer =
    Domain.spawn (fun () ->
        let running = ref true in
        while !running do
          match PB.pop b with
          | Some _ -> ignore (Atomic.fetch_and_add consumed 1)
          | None -> if Atomic.get consumed + Atomic.get flushed >= total then running := false
        done)
  in
  for i = 1 to total do
    PB.push b ~flush:(fun _ _ -> ignore (Atomic.fetch_and_add flushed 1)) ~off:(i * 64) ~len:1
  done;
  (* drain the tail ourselves so the consumer can terminate *)
  PB.drain b (fun _ _ -> ignore (Atomic.fetch_and_add consumed 1));
  Domain.join consumer;
  Alcotest.(check int) "exactly once" total (Atomic.get consumed + Atomic.get flushed)

(* ---- tracker ---- *)

let test_tracker_register () =
  let t = T.create ~max_threads:4 in
  Alcotest.(check int) "idle" 0 (T.active_epoch t ~tid:1);
  T.register t ~tid:1 ~epoch:7;
  Alcotest.(check int) "active" 7 (T.active_epoch t ~tid:1);
  Alcotest.(check bool) "probe finds it" true (T.any_active_le t ~epoch:7);
  Alcotest.(check bool) "probe bounded" false (T.any_active_le t ~epoch:6);
  T.unregister t ~tid:1;
  Alcotest.(check bool) "gone" false (T.any_active_le t ~epoch:100)

(* Run waiter and unregisterer as deterministic fibers: the scheduler
   proves [wait_all] blocks (the waiter can only resume once its await
   predicate holds, i.e. after the unregister) on every interleaving —
   no wall-clock "should still be blocked by now" window. *)
let test_tracker_wait_all_blocks_then_releases () =
  let scenario =
    {
      Dsched.init =
        (fun () ->
          let t = T.create ~max_threads:4 in
          T.register t ~tid:2 ~epoch:5;
          (t, ref false, ref false));
      threads =
        [|
          (fun (t, released, unregistered) ->
            T.wait_all t ~epoch:5;
            (* early release = returning while the epoch is still active *)
            if !unregistered then released := true);
          (fun (t, _, unregistered) ->
            unregistered := true;
            T.unregister t ~tid:2);
        |];
      check_crash = None;
      check_done = Some (fun (_, released, _) -> !released);
    }
  in
  let r =
    Dsched.explore (Dsched.Exhaustive { preemptions = 2; max_attempts = 10_000; crashes = false })
      scenario
  in
  match r.Dsched.failure with
  | Some f -> Alcotest.fail (Dsched.failure_to_string f)
  | None -> Alcotest.(check bool) "interleavings explored" true (r.Dsched.schedules > 1)

let test_tracker_wait_ignores_newer_epochs () =
  let t = T.create ~max_threads:4 in
  T.register t ~tid:0 ~epoch:9;
  (* an op in epoch 9 must not block waiting on epoch 8 *)
  T.wait_all t ~epoch:8;
  T.unregister t ~tid:0;
  Alcotest.(check bool) "returned immediately" true true

(* ---- mindicator ---- *)

let test_mindicator_min_tracking () =
  let m = M.create ~max_threads:4 in
  Alcotest.(check int) "initially infinite" M.infinity_epoch (M.query m);
  M.announce m ~tid:0 ~epoch:10;
  M.announce m ~tid:1 ~epoch:7;
  Alcotest.(check int) "min" 7 (M.query m);
  M.announce m ~tid:1 ~epoch:12 (* announce never raises a leaf *);
  Alcotest.(check int) "min unchanged" 7 (M.query m);
  M.retire m ~tid:1 ~epoch:20;
  Alcotest.(check int) "min moves to other thread" 10 (M.query m);
  M.clear m ~tid:0;
  Alcotest.(check int) "only retired leaf left" 20 (M.query m)

(* ---- payload header codec ---- *)

let make_region () = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:2 ~capacity:4096 ()

let test_hdr_roundtrip () =
  let r = make_region () in
  let hdr = { H.ptype = H.Update; epoch = 42; uid = 1234; size = 100 } in
  H.write r ~off:64 hdr;
  (match H.read r ~off:64 ~block_size:256 with
  | Some h ->
      Alcotest.(check bool) "type" true (h.H.ptype = H.Update);
      Alcotest.(check int) "epoch" 42 h.H.epoch;
      Alcotest.(check int) "uid" 1234 h.H.uid;
      Alcotest.(check int) "size" 100 h.H.size
  | None -> Alcotest.fail "expected header");
  Alcotest.(check int) "content offset" (64 + H.header_size) (H.content_off 64)

let test_hdr_rejects_garbage () =
  let r = make_region () in
  Alcotest.(check bool) "zeroed block" true (H.read r ~off:0 ~block_size:256 = None);
  (* oversize content relative to the block *)
  H.write r ~off:64 { H.ptype = H.Alloc; epoch = 1; uid = 1; size = 10_000 };
  Alcotest.(check bool) "size beyond block rejected" true (H.read r ~off:64 ~block_size:256 = None);
  (* scrub invalidates *)
  H.write r ~off:128 { H.ptype = H.Alloc; epoch = 1; uid = 1; size = 10 };
  H.scrub r ~off:128;
  Alcotest.(check bool) "scrubbed" true (H.read r ~off:128 ~block_size:256 = None)

let test_hdr_type_mutation () =
  let r = make_region () in
  H.write r ~off:64 { H.ptype = H.Update; epoch = 5; uid = 9; size = 0 };
  H.set_type r ~off:64 H.Delete;
  match H.read r ~off:64 ~block_size:256 with
  | Some h -> Alcotest.(check bool) "now an anti-payload" true (h.H.ptype = H.Delete)
  | None -> Alcotest.fail "expected header"

(* ---- typed payload codecs ---- *)

let test_kv_codec () =
  let cases = [ ("", ""); ("k", "v"); ("key-with-:", String.make 1000 'x'); ("a", "") ] in
  List.iter
    (fun (k, v) ->
      let k', v' = P.Kv_content.decode (P.Kv_content.encode (k, v)) in
      Alcotest.(check string) "key" k k';
      Alcotest.(check string) "value" v v')
    cases

let test_seq_codec () =
  List.iter
    (fun (n, s) ->
      let n', s' = P.Seq_content.decode (P.Seq_content.encode (n, s)) in
      Alcotest.(check int) "seq" n n';
      Alcotest.(check string) "payload" s s')
    [ (0, ""); (1, "x"); (max_int / 2, String.make 100 'q') ]

let qcheck_kv_codec_roundtrip =
  QCheck.Test.make ~name:"kv codec roundtrips arbitrary strings" ~count:200
    QCheck.(pair string string)
    (fun (k, v) -> P.Kv_content.decode (P.Kv_content.encode (k, v)) = (k, v))

let () =
  Alcotest.run "runtime"
    [
      ( "persist_buffer",
        [
          Alcotest.test_case "FIFO" `Quick test_pb_fifo;
          Alcotest.test_case "overflow flushes oldest" `Quick test_pb_overflow_flushes_oldest;
          Alcotest.test_case "oversized range rejected" `Quick test_pb_oversized_range_rejected;
          Alcotest.test_case "drain" `Quick test_pb_drain;
          Alcotest.test_case "concurrent consumer" `Quick test_pb_concurrent_consumer;
        ] );
      ( "tracker",
        [
          Alcotest.test_case "register/probe" `Quick test_tracker_register;
          Alcotest.test_case "wait_all blocks" `Quick test_tracker_wait_all_blocks_then_releases;
          Alcotest.test_case "wait ignores newer" `Quick test_tracker_wait_ignores_newer_epochs;
        ] );
      ("mindicator", [ Alcotest.test_case "min tracking" `Quick test_mindicator_min_tracking ]);
      ( "payload_hdr",
        [
          Alcotest.test_case "roundtrip" `Quick test_hdr_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_hdr_rejects_garbage;
          Alcotest.test_case "type mutation" `Quick test_hdr_type_mutation;
        ] );
      ( "codecs",
        [
          Alcotest.test_case "kv" `Quick test_kv_codec;
          Alcotest.test_case "seq" `Quick test_seq_codec;
          QCheck_alcotest.to_alcotest qcheck_kv_codec_roundtrip;
        ] );
    ]
