(* A small Wing–Gong linearizability checker.

   Concurrent test drivers record each operation's invocation and
   response instants (global atomic stamps); the checker then searches
   for a linearization: a total order of operations that (a) respects
   real-time precedence (op A's response before op B's invocation
   forces A before B) and (b) is legal for a sequential model of the
   abstraction.

   Exponential in the worst case, fine for the small windows the tests
   generate (dozens of overlapping ops).  This is the same criterion
   the paper's §4 proofs target, checked mechanically on real
   executions of the nonblocking structures. *)

type ('op, 'res) event = {
  op : 'op;
  result : 'res;
  invoked : int;
  responded : int;
}

(* Global stamp source for drivers. *)
let clock = Atomic.make 0
let stamp () = Atomic.fetch_and_add clock 1
let reset_clock () = Atomic.set clock 0

(* Record one operation: stamps around the call. *)
let record op f =
  let invoked = stamp () in
  let result = f () in
  let responded = stamp () in
  { op; result; invoked; responded }

(* A sequential specification: apply an op to a model state, returning
   the expected result and the new state.  States must be comparable
   for the memoization cut. *)
type ('st, 'op, 'res) spec = { initial : 'st; apply : 'st -> 'op -> 'res * 'st }

(* Is there a linearization of [events] legal for [spec]?  Classic
   backtracking: at each step, try every minimal (by real-time order)
   pending event whose result matches the model. *)
let check spec events =
  let events = Array.of_list events in
  let n = Array.length events in
  let taken = Array.make n false in
  (* memoize failed (taken-set, state) configurations *)
  let failed = Hashtbl.create 1024 in
  let key state =
    let b = Bytes.create n in
    for i = 0 to n - 1 do
      Bytes.set b i (if taken.(i) then '1' else '0')
    done;
    (Bytes.to_string b, state)
  in
  (* event i is minimal if no un-taken event responded before i's
     invocation *)
  let minimal i =
    let ok = ref true in
    for j = 0 to n - 1 do
      if (not taken.(j)) && j <> i && events.(j).responded < events.(i).invoked then ok := false
    done;
    !ok
  in
  let rec search state depth =
    if depth = n then true
    else if Hashtbl.mem failed (key state) then false
    else begin
      let found = ref false in
      let i = ref 0 in
      while (not !found) && !i < n do
        let e = events.(!i) in
        if (not taken.(!i)) && minimal !i then begin
          let expected, state' = spec.apply state e.op in
          if expected = e.result then begin
            taken.(!i) <- true;
            if search state' (depth + 1) then found := true;
            taken.(!i) <- false
          end
        end;
        incr i
      done;
      if not !found then Hashtbl.replace failed (key state) ();
      !found
    end
  in
  search spec.initial 0

(* ---- ready-made specs ---- *)

type stack_op = Push of string | Pop
type queue_op = Enq of string | Deq
type set_op = Add of string | Remove of string | Contains of string

(* Results are encoded as [string option] for pop/deq, [bool] for set
   ops; pushes return [None]/[true] markers chosen by the drivers. *)

let stack_spec : (string list, stack_op, string option) spec =
  {
    initial = [];
    apply =
      (fun st op ->
        match (op, st) with
        | Push v, _ -> (None, v :: st)
        | Pop, [] -> (None, [])
        | Pop, x :: rest -> (Some x, rest));
  }

let queue_spec : (string list, queue_op, string option) spec =
  {
    initial = [];
    apply =
      (fun st op ->
        match (op, st) with
        | Enq v, _ -> (None, st @ [ v ])
        | Deq, [] -> (None, [])
        | Deq, x :: rest -> (Some x, rest));
  }

let set_spec : (string list, set_op, bool) spec =
  {
    initial = [];
    apply =
      (fun st op ->
        match op with
        | Add v -> if List.mem v st then (false, st) else (true, v :: st)
        | Remove v -> if List.mem v st then (true, List.filter (( <> ) v) st) else (false, st)
        | Contains v -> (List.mem v st, st));
  }

(* Vector results mix index, value, and success answers; one result
   type keeps the event list homogeneous. *)
type vector_op = Vpush of string | Vpop | Vget of int | Vset of int * string
type vector_res = VIdx of int | VVal of string option | VOk of bool

let vector_spec : (string list, vector_op, vector_res) spec =
  {
    initial = [];
    apply =
      (fun st op ->
        match op with
        | Vpush v -> (VIdx (List.length st), st @ [ v ])
        | Vpop -> (
            match List.rev st with
            | [] -> (VVal None, [])
            | x :: rest -> (VVal (Some x), List.rev rest))
        | Vget i -> (VVal (List.nth_opt st i), st)
        | Vset (i, v) ->
            if i >= 0 && i < List.length st then
              (VOk true, List.mapi (fun j x -> if j = i then v else x) st)
            else (VOk false, st));
  }

(* Map-with-snapshot model mirroring Mhamt's semantics: the state is
   the current association plus every snapshot ever taken (id -> the
   association at that instant).  [Msnapshot id] must linearize at one
   point — every later [Mview_find (id, _)] reads that frozen map, so a
   view that mixed values from two versions (a torn read across a path
   copy) has no legal linearization.  Associations stay sorted so equal
   abstract states memoize to equal keys.  Snapshot ops answer [None]
   by convention; a find against an id the model never saw answers a
   sentinel no real execution produces, making it unsatisfiable. *)
type map_op =
  | Mput of string * string
  | Mremove of string
  | Mget of string
  | Msnapshot of int
  | Mview_find of int * string

type map_state = { cur : (string * string) list; views : (int * (string * string) list) list }

let map_snap_spec : (map_state, map_op, string option) spec =
  let sorted_replace l k v = List.sort compare ((k, v) :: List.remove_assoc k l) in
  {
    initial = { cur = []; views = [] };
    apply =
      (fun st op ->
        match op with
        | Mput (k, v) -> (List.assoc_opt k st.cur, { st with cur = sorted_replace st.cur k v })
        | Mremove k -> (List.assoc_opt k st.cur, { st with cur = List.remove_assoc k st.cur })
        | Mget k -> (List.assoc_opt k st.cur, st)
        | Msnapshot id -> (None, { st with views = List.sort compare ((id, st.cur) :: st.views) })
        | Mview_find (id, k) -> (
            match List.assoc_opt id st.views with
            | Some frozen -> (List.assoc_opt k frozen, st)
            | None -> (Some "\000unregistered-view", st)));
  }

(* Undirected-graph model mirroring Mgraph's semantics: vertex adds
   reject duplicates, edge adds reject self-loops / missing endpoints /
   duplicates, vertex removal drops incident edges.  Both components
   stay sorted so equal abstract states memoize to equal keys. *)
type graph_op =
  | Gadd_vertex of int * string
  | Gremove_vertex of int
  | Gadd_edge of int * int * string
  | Gremove_edge of int * int
  | Gedge_attrs of int * int
  | Gvertex_attrs of int

type graph_res = GB of bool | GS of string option

type graph_state = { verts : (int * string) list; edges : ((int * int) * string) list }

let graph_spec : (graph_state, graph_op, graph_res) spec =
  let ekey a b = (min a b, max a b) in
  let sorted_insert l kv = List.sort compare (kv :: l) in
  {
    initial = { verts = []; edges = [] };
    apply =
      (fun st op ->
        match op with
        | Gadd_vertex (v, attrs) ->
            if List.mem_assoc v st.verts then (GB false, st)
            else (GB true, { st with verts = sorted_insert st.verts (v, attrs) })
        | Gremove_vertex v ->
            if not (List.mem_assoc v st.verts) then (GB false, st)
            else
              ( GB true,
                {
                  verts = List.remove_assoc v st.verts;
                  edges = List.filter (fun ((a, b), _) -> a <> v && b <> v) st.edges;
                } )
        | Gadd_edge (a, b, attrs) ->
            if
              a = b
              || (not (List.mem_assoc a st.verts))
              || (not (List.mem_assoc b st.verts))
              || List.mem_assoc (ekey a b) st.edges
            then (GB false, st)
            else (GB true, { st with edges = sorted_insert st.edges (ekey a b, attrs) })
        | Gremove_edge (a, b) ->
            if List.mem_assoc (ekey a b) st.edges then
              (GB true, { st with edges = List.remove_assoc (ekey a b) st.edges })
            else (GB false, st)
        | Gedge_attrs (a, b) -> (GS (List.assoc_opt (ekey a b) st.edges), st)
        | Gvertex_attrs v -> (GS (List.assoc_opt v st.verts), st));
  }
