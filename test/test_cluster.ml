(* Cluster-mode tests: the consistent-hash ring's stability and skew
   properties (qcheck), and the router end-to-end against in-process
   Netserve shards on ephemeral ports — routing parity, split
   multi-get reassembly, stats merge, shard-down error surface, and
   down → probe → rejoin. *)

module Ring = Cluster.Ring
module Router = Cluster.Router

(* ---- ring properties ---- *)

let key_gen = QCheck.Gen.(map (Printf.sprintf "key-%d") (int_bound 1_000_000))

let ids_gen =
  (* 3..8 distinct small shard ids *)
  QCheck.Gen.(
    int_range 3 8 >>= fun n ->
    map
      (fun salt -> List.init n (fun i -> (i * 7) + (salt mod 5)))
      (int_bound 1000))

let prop_removal_stability =
  QCheck.Test.make ~count:200 ~name:"ring: removal only moves the dead shard's keys"
    QCheck.(
      make
        Gen.(
          pair ids_gen (list_size (int_range 1 100) key_gen) >>= fun (ids, keys) ->
          map (fun pick -> (ids, keys, List.nth ids (pick mod List.length ids))) (int_bound 100)))
    (fun (ids, keys, dead) ->
      let r = Ring.create ids in
      let r' = Ring.remove r dead in
      List.for_all
        (fun k ->
          let before = Ring.lookup r k in
          if before = dead then
            (* must move, and to a surviving shard *)
            Ring.lookup r' k <> dead
          else Ring.lookup r' k = before)
        keys)

let prop_add_remove_inverse =
  QCheck.Test.make ~count:100 ~name:"ring: add undoes remove"
    QCheck.(
      make
        Gen.(
          pair ids_gen (list_size (int_range 1 50) key_gen) >>= fun (ids, keys) ->
          map (fun pick -> (ids, keys, List.nth ids (pick mod List.length ids))) (int_bound 100)))
    (fun (ids, keys, dead) ->
      let r = Ring.create ids in
      let r' = Ring.add (Ring.remove r dead) dead in
      List.for_all (fun k -> Ring.lookup r k = Ring.lookup r' k) keys)

(* Distribution skew at the default vnode count: with 128 points per
   shard the per-shard share of a large uniform keyspace stays well
   inside [0.4x, 2x] of ideal.  Deterministic keys, so no flake. *)
let test_skew_bound () =
  let shards = 8 in
  let keys = 20_000 in
  let r = Ring.create (List.init shards (fun i -> i)) in
  let counts = Array.make shards 0 in
  for i = 0 to keys - 1 do
    let s = Ring.lookup r (Printf.sprintf "user:%d:profile" i) in
    counts.(s) <- counts.(s) + 1
  done;
  let ideal = float_of_int keys /. float_of_int shards in
  Array.iteri
    (fun s c ->
      let share = float_of_int c /. ideal in
      if share > 2.0 || share < 0.4 then
        Alcotest.failf "shard %d share %.2fx ideal (counts %s)" s share
          (String.concat "," (Array.to_list (Array.map string_of_int counts))))
    counts

let test_lookup_deterministic () =
  let r = Ring.create [ 0; 1; 2 ] in
  let r2 = Ring.create [ 2; 0; 1 ] in
  for i = 0 to 99 do
    let k = Printf.sprintf "k%d" i in
    Alcotest.(check int) "id-order independent" (Ring.lookup r k) (Ring.lookup r2 k)
  done;
  Alcotest.(check (list int)) "shards sorted" [ 0; 1; 2 ] (Ring.shards r2)

(* ---- router end-to-end over in-process shards ---- *)

let make_shard_store () =
  let m = Baselines.Transient_map.create ~buckets:64 Baselines.Transient_map.Dram in
  Kvstore.Store.create (Kvstore.Store.of_transient_map m)

let start_shard ?(port = 0) () =
  Netserve.start
    ~config:{ Netserve.default_config with port; workers = 1; tick_s = 0.01 }
    (make_shard_store ())

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  fd

let send fd s =
  let off = ref 0 in
  let n = String.length s in
  while !off < n do
    off := !off + Unix.write_substring fd s !off (n - !off)
  done

let recv_exact fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  (try
     while !off < n do
       let k = Unix.read fd buf !off (n - !off) in
       if k = 0 then raise Exit;
       off := !off + k
     done
   with Exit -> ());
  Bytes.sub_string buf 0 !off

let recv_until fd suffix =
  let acc = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let ends_with () =
    let s = Buffer.contents acc in
    String.length s >= String.length suffix
    && String.sub s (String.length s - String.length suffix) (String.length suffix) = suffix
  in
  (try
     while not (ends_with ()) do
       let k = Unix.read fd chunk 0 (Bytes.length chunk) in
       if k = 0 then raise Exit;
       Buffer.add_subbytes acc chunk 0 k
     done
   with Exit -> ());
  Buffer.contents acc

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i = i + nn <= nh && (String.sub haystack i nn = needle || scan (i + 1)) in
  nn = 0 || scan 0

let router_config =
  {
    Router.default_config with
    port = 0;
    tick_s = 0.01;
    probe_interval_s = 0.05;
    connect_timeout_s = 2.0;
  }

(* 3 shards + router; hand the body the router, its ring, and the shard
   handles (so tests can kill/restart them); always torn down. *)
let with_cluster body =
  let shards = Array.init 3 (fun _ -> start_shard ()) in
  let addrs =
    Array.to_list
      (Array.mapi
         (fun i t -> { Router.sid = i; shost = "127.0.0.1"; sport = Netserve.port t })
         shards)
  in
  let r = Router.start ~config:router_config addrs in
  let ring = Ring.create ~vnodes:router_config.vnodes [ 0; 1; 2 ] in
  Fun.protect
    ~finally:(fun () ->
      Router.stop r;
      Array.iter (fun t -> try ignore (Netserve.shutdown t) with _ -> ()) shards)
    (fun () ->
      Alcotest.(check bool) "all shards join" true (Router.wait_up r ~timeout_s:10.0);
      body r ring shards)

(* some keys owned by each shard, under the router's own ring *)
let keys_on ring sid n =
  let rec go acc i =
    if List.length acc = n then List.rev acc
    else
      let k = Printf.sprintf "k-%d" i in
      go (if Ring.lookup ring k = sid then k :: acc else acc) (i + 1)
  in
  go [] 0

let test_route_parity () =
  with_cluster (fun r _ring _shards ->
      let fd = connect (Router.port r) in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          (* storage, retrieval, delete, arithmetic through the router *)
          send fd "set alpha 7 0 5\r\nhello\r\n";
          Alcotest.(check string) "set" "STORED\r\n" (recv_exact fd 8);
          send fd "get alpha\r\n";
          Alcotest.(check string) "get" "VALUE alpha 7 5\r\nhello\r\nEND\r\n"
            (recv_exact fd 29);
          send fd "set ctr 0 0 1\r\n5\r\n";
          ignore (recv_exact fd 8);
          send fd "incr ctr 3\r\n";
          Alcotest.(check string) "incr" "8\r\n" (recv_exact fd 3);
          send fd "decr ctr 10\r\n";
          Alcotest.(check string) "decr floors" "0\r\n" (recv_exact fd 3);
          send fd "delete alpha\r\n";
          Alcotest.(check string) "delete" "DELETED\r\n" (recv_exact fd 9);
          send fd "get alpha\r\n";
          Alcotest.(check string) "deleted" "END\r\n" (recv_exact fd 5);
          send fd "add alpha 0 0 1\r\nx\r\n";
          Alcotest.(check string) "add" "STORED\r\n" (recv_exact fd 8);
          send fd "add alpha 0 0 1\r\ny\r\n";
          Alcotest.(check string) "add existing" "NOT_STORED\r\n" (recv_exact fd 12);
          send fd "version\r\n";
          Alcotest.(check bool) "router version" true
            (contains (recv_until fd "\r\n") "VERSION")))

let test_pipelined_keys_across_shards () =
  with_cluster (fun r ring _shards ->
      (* make sure the keyspace really spans all three shards *)
      let keys = List.init 30 (fun i -> Printf.sprintf "k-%d" (i * 7)) in
      let owners =
        List.sort_uniq compare
          (List.map (Ring.lookup ring) (List.init 300 (Printf.sprintf "k-%d")))
      in
      Alcotest.(check (list int)) "keyspace spans all shards" [ 0; 1; 2 ] owners;
      let fd = connect (Router.port r) in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          (* pipeline all the sets in one write; replies come back in order *)
          let b = Buffer.create 1024 in
          List.iter
            (fun k -> Buffer.add_string b (Printf.sprintf "set %s 0 0 2\r\nv%c\r\n" k k.[2]))
            keys;
          send fd (Buffer.contents b);
          let want = String.concat "" (List.map (fun _ -> "STORED\r\n") keys) in
          Alcotest.(check string) "30 pipelined STOREDs" want
            (recv_exact fd (String.length want));
          (* read each back individually *)
          List.iter
            (fun k ->
              send fd (Printf.sprintf "get %s\r\n" k);
              let got = recv_until fd "END\r\n" in
              Alcotest.(check bool) (k ^ " served") true (contains got ("VALUE " ^ k)))
            keys))

let test_multiget_reassembly () =
  with_cluster (fun r ring _shards ->
      let keys = List.init 20 (Printf.sprintf "k-%d") in
      let fd = connect (Router.port r) in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          List.iter
            (fun k ->
              send fd (Printf.sprintf "set %s 0 0 3\r\nval\r\n" k);
              ignore (recv_exact fd 8))
            keys;
          (* one multi-get spanning all shards: exactly one END, every
             key present exactly once *)
          send fd (Printf.sprintf "get %s missing-key\r\n" (String.concat " " keys));
          let got = recv_until fd "END\r\n" in
          List.iter
            (fun k ->
              Alcotest.(check bool) (k ^ " in multiget") true
                (contains got (Printf.sprintf "VALUE %s 0 3\r\nval\r\n" k)))
            keys;
          Alcotest.(check bool) "miss omitted" false (contains got "missing-key");
          let ends =
            List.length
              (List.filter
                 (fun l -> l = "END")
                 (String.split_on_char '\r' (String.concat "" (String.split_on_char '\n' got))))
          in
          Alcotest.(check int) "single END" 1 ends;
          ignore ring))

let test_stats_merge () =
  with_cluster (fun r _ring _shards ->
      let fd = connect (Router.port r) in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          send fd "set s1 0 0 1\r\nx\r\n";
          ignore (recv_exact fd 8);
          send fd "stats\r\n";
          let got = recv_until fd "END\r\n" in
          Alcotest.(check bool) "cluster_shards" true (contains got "STAT cluster_shards 3");
          Alcotest.(check bool) "cluster_up" true (contains got "STAT cluster_up 3");
          Alcotest.(check bool) "per-shard state" true (contains got "STAT shard0_state up");
          (* threads sums across the three 1-worker shards *)
          Alcotest.(check bool) "numeric sum" true (contains got "STAT threads 3")))

let test_shard_down_and_rejoin () =
  with_cluster (fun r ring shards ->
      let victim = 1 in
      let vkeys = keys_on ring victim 3 in
      let skeys = keys_on ring 0 3 @ keys_on ring 2 3 in
      let fd = connect (Router.port r) in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          List.iter
            (fun k ->
              send fd (Printf.sprintf "set %s 0 0 1\r\nv\r\n" k);
              Alcotest.(check string) (k ^ " stored") "STORED\r\n" (recv_exact fd 8))
            (vkeys @ skeys);
          (* take the victim down (graceful here; SIGKILL in clustersmoke) *)
          let vport = Netserve.port shards.(victim) in
          ignore (Netserve.shutdown shards.(victim));
          (* the victim's keyspace errors; survivors keep serving.  The
             router may need one failed request to notice the close. *)
          let saw_down = ref false in
          let attempts = ref 0 in
          while (not !saw_down) && !attempts < 100 do
            incr attempts;
            send fd (Printf.sprintf "get %s\r\n" (List.hd vkeys));
            let got = recv_until fd "\r\n" in
            if contains got "SERVER_ERROR shard down" then saw_down := true
            else Unix.sleepf 0.02
          done;
          Alcotest.(check bool) "victim keyspace answers shard down" true !saw_down;
          List.iter
            (fun k ->
              send fd (Printf.sprintf "get %s\r\n" k);
              let got = recv_until fd "END\r\n" in
              Alcotest.(check bool) (k ^ " survives") true (contains got ("VALUE " ^ k)))
            skeys;
          (* stats reflect the outage *)
          send fd "stats\r\n";
          let got = recv_until fd "END\r\n" in
          Alcotest.(check bool) "cluster_up 2" true (contains got "STAT cluster_up 2");
          Alcotest.(check bool) "victim marked down" true
            (contains got (Printf.sprintf "STAT shard%d_state down" victim));
          (* restart on the same port; the probe rejoins it *)
          shards.(victim) <- start_shard ~port:vport ();
          Alcotest.(check bool) "rejoin converges 3/3" true (Router.wait_up r ~timeout_s:10.0);
          (* its keyspace serves again (fresh store here — durability
             across the restart is clustersmoke's heap-file assertion) *)
          send fd (Printf.sprintf "set %s 0 0 1\r\nw\r\n" (List.hd vkeys));
          Alcotest.(check string) "victim keyspace writable again" "STORED\r\n"
            (recv_exact fd 8);
          let st = Router.stats r in
          Alcotest.(check bool) "down transition counted" true (st.Router.downs >= 1);
          Alcotest.(check bool) "rejoin counted" true (st.Router.rejoins >= 4)))

let test_down_before_start () =
  (* router started against ports nobody listens on: every request for
     any keyspace answers shard down, and the router survives *)
  let dead = [ { Router.sid = 0; shost = "127.0.0.1"; sport = 1 } ] in
  let r = Router.start ~config:router_config dead in
  Fun.protect
    ~finally:(fun () -> Router.stop r)
    (fun () ->
      let fd = connect (Router.port r) in
      Fun.protect
        ~finally:(fun () -> Unix.close fd)
        (fun () ->
          send fd "get anything\r\n";
          Alcotest.(check bool) "shard down" true
            (contains (recv_until fd "\r\n") "SERVER_ERROR shard down");
          send fd "set k 0 0 1\r\nv\r\n";
          Alcotest.(check bool) "storage shard down" true
            (contains (recv_until fd "\r\n") "SERVER_ERROR shard down")))

let () =
  Alcotest.run "cluster"
    [
      ( "ring",
        [
          QCheck_alcotest.to_alcotest prop_removal_stability;
          QCheck_alcotest.to_alcotest prop_add_remove_inverse;
          Alcotest.test_case "skew bound at default vnodes" `Quick test_skew_bound;
          Alcotest.test_case "lookup deterministic" `Quick test_lookup_deterministic;
        ] );
      ( "router",
        [
          Alcotest.test_case "route parity" `Quick test_route_parity;
          Alcotest.test_case "pipelined keys across shards" `Quick
            test_pipelined_keys_across_shards;
          Alcotest.test_case "multiget reassembly" `Quick test_multiget_reassembly;
          Alcotest.test_case "stats merge" `Quick test_stats_merge;
          Alcotest.test_case "shard down and rejoin" `Quick test_shard_down_and_rejoin;
          Alcotest.test_case "all shards down from birth" `Quick test_down_before_start;
        ] );
    ]
