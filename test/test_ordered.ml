(* Tests for the ordered structures: the Montage skip list and the
   nonblocking sorted-list set. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config

let testing_cfg = { Cfg.testing with max_threads = 6 }

let make_esys ?(capacity = 1 lsl 24) () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity () in
  (region, E.create ~config:testing_cfg region)

(* ---- skip list ---- *)

let test_skiplist_basic () =
  let _, esys = make_esys () in
  let s = Pstructs.Mskiplist.create esys in
  Alcotest.(check (option string)) "empty" None (Pstructs.Mskiplist.get s ~tid:0 "a");
  Alcotest.(check (option string)) "insert" None (Pstructs.Mskiplist.put s ~tid:0 "b" "2");
  Alcotest.(check (option string)) "get" (Some "2") (Pstructs.Mskiplist.get s ~tid:0 "b");
  Alcotest.(check (option string)) "update" (Some "2") (Pstructs.Mskiplist.put s ~tid:0 "b" "22");
  Alcotest.(check (option string)) "updated" (Some "22") (Pstructs.Mskiplist.get s ~tid:0 "b");
  Alcotest.(check (option string)) "remove" (Some "22") (Pstructs.Mskiplist.remove s ~tid:0 "b");
  Alcotest.(check (option string)) "gone" None (Pstructs.Mskiplist.get s ~tid:0 "b");
  Alcotest.(check (option string)) "remove missing" None (Pstructs.Mskiplist.remove s ~tid:0 "b")

let test_skiplist_ordered_iteration () =
  let _, esys = make_esys () in
  let s = Pstructs.Mskiplist.create esys in
  let keys = [ "delta"; "alpha"; "echo"; "charlie"; "bravo" ] in
  List.iter (fun k -> ignore (Pstructs.Mskiplist.put s ~tid:0 k (String.uppercase_ascii k))) keys;
  let sorted = Pstructs.Mskiplist.to_alist s ~tid:0 |> List.map fst in
  Alcotest.(check (list string)) "sorted order" [ "alpha"; "bravo"; "charlie"; "delta"; "echo" ] sorted;
  Alcotest.(check (option (pair string string))) "min binding" (Some ("alpha", "ALPHA"))
    (Pstructs.Mskiplist.min_binding s ~tid:0)

let test_skiplist_range_query () =
  let _, esys = make_esys () in
  let s = Pstructs.Mskiplist.create esys in
  for i = 0 to 99 do
    ignore (Pstructs.Mskiplist.put s ~tid:0 (Printf.sprintf "k%02d" i) (string_of_int i))
  done;
  let range =
    Pstructs.Mskiplist.fold_range s ~tid:0 ~lo:"k10" ~hi:"k19" ~init:[] (fun acc k _ -> k :: acc)
  in
  Alcotest.(check int) "ten keys in range" 10 (List.length range);
  let total =
    Pstructs.Mskiplist.fold_range s ~tid:0 ~lo:"k10" ~hi:"k19" ~init:0 (fun acc _ v ->
        acc + int_of_string v)
  in
  Alcotest.(check int) "sum 10..19" 145 total

let test_skiplist_many_keys () =
  let _, esys = make_esys () in
  let s = Pstructs.Mskiplist.create esys in
  let rng = Util.Xoshiro.create 7 in
  let model = Hashtbl.create 256 in
  for _ = 1 to 2000 do
    let k = Printf.sprintf "key%04d" (Util.Xoshiro.int rng 500) in
    if Util.Xoshiro.bool rng then begin
      let v = string_of_int (Util.Xoshiro.int rng 1000) in
      ignore (Pstructs.Mskiplist.put s ~tid:0 k v);
      Hashtbl.replace model k v
    end
    else begin
      ignore (Pstructs.Mskiplist.remove s ~tid:0 k);
      Hashtbl.remove model k
    end
  done;
  Alcotest.(check int) "size matches model" (Hashtbl.length model) (Pstructs.Mskiplist.size s);
  Hashtbl.iter
    (fun k v ->
      Alcotest.(check (option string)) ("key " ^ k) (Some v) (Pstructs.Mskiplist.get s ~tid:0 k))
    model;
  (* and the iteration order is sorted *)
  let keys = Pstructs.Mskiplist.to_alist s ~tid:0 |> List.map fst in
  Alcotest.(check (list string)) "iteration sorted" (List.sort compare keys) keys

let test_skiplist_crash_recovery () =
  let region, esys = make_esys () in
  let s = Pstructs.Mskiplist.create esys in
  for i = 0 to 49 do
    ignore (Pstructs.Mskiplist.put s ~tid:0 (Printf.sprintf "k%02d" i) (string_of_int (i * i)))
  done;
  ignore (Pstructs.Mskiplist.remove s ~tid:0 "k25");
  E.sync esys ~tid:0;
  ignore (Pstructs.Mskiplist.put s ~tid:0 "late" "lost");
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let s2 = Pstructs.Mskiplist.recover esys2 payloads in
  Alcotest.(check int) "49 keys" 49 (Pstructs.Mskiplist.size s2);
  Alcotest.(check (option string)) "value intact" (Some "1600") (Pstructs.Mskiplist.get s2 ~tid:0 "k40");
  Alcotest.(check (option string)) "removed stays removed" None (Pstructs.Mskiplist.get s2 ~tid:0 "k25");
  Alcotest.(check (option string)) "unsynced lost" None (Pstructs.Mskiplist.get s2 ~tid:0 "late");
  let keys = Pstructs.Mskiplist.to_alist s2 ~tid:0 |> List.map fst in
  Alcotest.(check (list string)) "recovered order sorted" (List.sort compare keys) keys

let test_skiplist_parallel_recovery () =
  let region, esys = make_esys () in
  let s = Pstructs.Mskiplist.create esys in
  for i = 0 to 199 do
    ignore (Pstructs.Mskiplist.put s ~tid:0 (Printf.sprintf "k%03d" i) "v")
  done;
  E.sync esys ~tid:0;
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let s2 = Pstructs.Mskiplist.recover ~threads:4 esys2 payloads in
  Alcotest.(check int) "all keys" 200 (Pstructs.Mskiplist.size s2)

let test_skiplist_concurrent_reads_during_writes () =
  let _, esys = make_esys () in
  let s = Pstructs.Mskiplist.create esys in
  for i = 0 to 199 do
    ignore (Pstructs.Mskiplist.put s ~tid:0 (Printf.sprintf "base%03d" i) "v")
  done;
  let stop = Atomic.make false in
  let hits = Atomic.make 0 in
  let reader =
    Domain.spawn (fun () ->
        let rng = Util.Xoshiro.create 3 in
        while not (Atomic.get stop) do
          let k = Printf.sprintf "base%03d" (Util.Xoshiro.int rng 200) in
          if Pstructs.Mskiplist.get s ~tid:1 k <> None then Atomic.incr hits
        done)
  in
  for i = 0 to 300 do
    ignore (Pstructs.Mskiplist.put s ~tid:0 (Printf.sprintf "new%03d" i) "w")
  done;
  (* stop only after observed reader progress, not after a timeslice *)
  while Atomic.get hits = 0 do
    Domain.cpu_relax ()
  done;
  Atomic.set stop true;
  Domain.join reader;
  Alcotest.(check bool) "reader made progress and never crashed" true (Atomic.get hits > 0);
  Alcotest.(check int) "all writes landed" 501 (Pstructs.Mskiplist.size s)

(* model property *)
let qcheck_skiplist_vs_map =
  QCheck.Test.make ~name:"skiplist matches a sorted-map model" ~count:25
    QCheck.(list (pair (int_range 0 30) small_string))
    (fun script ->
      let _, esys = make_esys ~capacity:(1 lsl 22) () in
      let s = Pstructs.Mskiplist.create esys in
      let model = ref [] in
      List.iter
        (fun (k, v) ->
          let key = Printf.sprintf "k%02d" k in
          if String.length v mod 3 = 0 then begin
            ignore (Pstructs.Mskiplist.remove s ~tid:0 key);
            model := List.remove_assoc key !model
          end
          else begin
            ignore (Pstructs.Mskiplist.put s ~tid:0 key v);
            model := (key, v) :: List.remove_assoc key !model
          end)
        script;
      Pstructs.Mskiplist.to_alist s ~tid:0 = List.sort compare !model)

(* ---- nonblocking list set ---- *)

let test_set_basic () =
  let _, esys = make_esys () in
  let s = Pstructs.Nb_list_set.create esys in
  Alcotest.(check bool) "absent" false (Pstructs.Nb_list_set.contains s "x");
  Alcotest.(check bool) "add" true (Pstructs.Nb_list_set.add s ~tid:0 "x");
  Alcotest.(check bool) "present" true (Pstructs.Nb_list_set.contains s "x");
  Alcotest.(check bool) "add dup" false (Pstructs.Nb_list_set.add s ~tid:0 "x");
  Alcotest.(check bool) "remove" true (Pstructs.Nb_list_set.remove s ~tid:0 "x");
  Alcotest.(check bool) "gone" false (Pstructs.Nb_list_set.contains s "x");
  Alcotest.(check bool) "remove again" false (Pstructs.Nb_list_set.remove s ~tid:0 "x")

let test_set_sorted () =
  let _, esys = make_esys () in
  let s = Pstructs.Nb_list_set.create esys in
  List.iter (fun k -> ignore (Pstructs.Nb_list_set.add s ~tid:0 k)) [ "m"; "a"; "z"; "k"; "b" ];
  Alcotest.(check (list string)) "sorted" [ "a"; "b"; "k"; "m"; "z" ] (Pstructs.Nb_list_set.to_list s)

let test_set_concurrent_distinct () =
  let _, esys = make_esys () in
  let s = Pstructs.Nb_list_set.create esys in
  let per = 150 in
  let ds =
    Array.init 3 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (Pstructs.Nb_list_set.add s ~tid (Printf.sprintf "t%d-%03d" tid i))
            done))
  in
  Array.iter Domain.join ds;
  Alcotest.(check int) "all inserted" (3 * per) (Pstructs.Nb_list_set.length s)

let test_set_concurrent_contention () =
  (* all threads fight over the same small key space; final membership
     must be consistent (each key present or absent, never duplicated) *)
  let _, esys = make_esys () in
  let s = Pstructs.Nb_list_set.create esys in
  let ds =
    Array.init 3 (fun tid ->
        Domain.spawn (fun () ->
            let rng = Util.Xoshiro.create (tid + 11) in
            for _ = 1 to 600 do
              let k = Printf.sprintf "k%02d" (Util.Xoshiro.int rng 20) in
              if Util.Xoshiro.bool rng then ignore (Pstructs.Nb_list_set.add s ~tid k)
              else ignore (Pstructs.Nb_list_set.remove s ~tid k)
            done))
  in
  Array.iter Domain.join ds;
  let members = Pstructs.Nb_list_set.to_list s in
  Alcotest.(check bool) "no duplicates" true
    (List.length members = List.length (List.sort_uniq compare members));
  Alcotest.(check (list string)) "sorted" (List.sort compare members) members

let test_set_epoch_churn () =
  let _, esys = make_esys () in
  let s = Pstructs.Nb_list_set.create esys in
  let stop = Atomic.make false in
  let ops = Atomic.make 0 in
  (* progress-paced ticker (see test_pstructs): epoch churn follows the
     adds themselves, no wall-clock pacing *)
  let ticker =
    Domain.spawn (fun () ->
        let last = ref (-1) in
        while not (Atomic.get stop) do
          let seen = Atomic.get ops in
          if seen <> !last then begin
            last := seen;
            E.advance_epoch esys ~tid:5
          end
          else Domain.cpu_relax ()
        done)
  in
  for i = 0 to 300 do
    ignore (Pstructs.Nb_list_set.add s ~tid:0 (Printf.sprintf "%04d" i));
    Atomic.incr ops
  done;
  Atomic.set stop true;
  Domain.join ticker;
  Alcotest.(check int) "all adds under churn" 301 (Pstructs.Nb_list_set.length s)

let test_set_crash_recovery () =
  let region, esys = make_esys () in
  let s = Pstructs.Nb_list_set.create esys in
  List.iter (fun k -> ignore (Pstructs.Nb_list_set.add s ~tid:0 k)) [ "a"; "b"; "c"; "d" ];
  ignore (Pstructs.Nb_list_set.remove s ~tid:0 "b");
  E.sync esys ~tid:0;
  ignore (Pstructs.Nb_list_set.add s ~tid:0 "late");
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let s2 = Pstructs.Nb_list_set.recover esys2 payloads in
  Alcotest.(check (list string)) "survivors sorted, delete durable, late lost" [ "a"; "c"; "d" ]
    (Pstructs.Nb_list_set.to_list s2)

(* ---- nonblocking hashmap ---- *)

let test_nbmap_basic () =
  let _, esys = make_esys () in
  let m = Pstructs.Nb_hashmap.create ~buckets:64 esys in
  Alcotest.(check (option string)) "miss" None (Pstructs.Nb_hashmap.get m ~tid:0 "k");
  Alcotest.(check bool) "add" true (Pstructs.Nb_hashmap.add m ~tid:0 "k" "v1");
  Alcotest.(check (option string)) "hit" (Some "v1") (Pstructs.Nb_hashmap.get m ~tid:0 "k");
  Alcotest.(check bool) "add dup" false (Pstructs.Nb_hashmap.add m ~tid:0 "k" "v2");
  Alcotest.(check (option string)) "unchanged" (Some "v1") (Pstructs.Nb_hashmap.get m ~tid:0 "k");
  Alcotest.(check bool) "remove" true (Pstructs.Nb_hashmap.remove m ~tid:0 "k");
  Alcotest.(check bool) "remove again" false (Pstructs.Nb_hashmap.remove m ~tid:0 "k");
  Alcotest.(check bool) "mem after remove" false (Pstructs.Nb_hashmap.mem m "k")

let test_nbmap_concurrent_distinct () =
  let _, esys = make_esys () in
  let m = Pstructs.Nb_hashmap.create ~buckets:64 esys in
  let per = 200 in
  let ds =
    Array.init 3 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              ignore (Pstructs.Nb_hashmap.add m ~tid (Printf.sprintf "t%d-%03d" tid i) "x")
            done))
  in
  Array.iter Domain.join ds;
  Alcotest.(check int) "all present" (3 * per) (Pstructs.Nb_hashmap.size m)

let test_nbmap_concurrent_contention_with_churn () =
  let _, esys = make_esys () in
  let m = Pstructs.Nb_hashmap.create ~buckets:8 esys in
  let stop = Atomic.make false in
  let ops = Atomic.make 0 in
  let ticker =
    Domain.spawn (fun () ->
        let last = ref (-1) in
        while not (Atomic.get stop) do
          let seen = Atomic.get ops in
          if seen <> !last then begin
            last := seen;
            E.advance_epoch esys ~tid:5
          end
          else Domain.cpu_relax ()
        done)
  in
  let ds =
    Array.init 3 (fun tid ->
        Domain.spawn (fun () ->
            let rng = Util.Xoshiro.create (tid + 21) in
            for _ = 1 to 400 do
              let k = Printf.sprintf "k%02d" (Util.Xoshiro.int rng 16) in
              if Util.Xoshiro.bool rng then ignore (Pstructs.Nb_hashmap.add m ~tid k "v")
              else ignore (Pstructs.Nb_hashmap.remove m ~tid k);
              Atomic.incr ops
            done))
  in
  Array.iter Domain.join ds;
  Atomic.set stop true;
  Domain.join ticker;
  let pairs = Pstructs.Nb_hashmap.to_alist m ~tid:0 in
  let keys = List.map fst pairs in
  Alcotest.(check bool) "no duplicate keys" true
    (List.length keys = List.length (List.sort_uniq compare keys))

let test_nbmap_crash_recovery () =
  let region, esys = make_esys () in
  let m = Pstructs.Nb_hashmap.create ~buckets:32 esys in
  for i = 0 to 49 do
    ignore (Pstructs.Nb_hashmap.add m ~tid:0 (Printf.sprintf "k%02d" i) (string_of_int i))
  done;
  ignore (Pstructs.Nb_hashmap.remove m ~tid:0 "k10");
  E.sync esys ~tid:0;
  ignore (Pstructs.Nb_hashmap.add m ~tid:0 "late" "x");
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let m2 = Pstructs.Nb_hashmap.recover ~buckets:32 esys2 payloads in
  Alcotest.(check int) "49 pairs" 49 (Pstructs.Nb_hashmap.size m2);
  Alcotest.(check (option string)) "value intact" (Some "33") (Pstructs.Nb_hashmap.get m2 ~tid:0 "k33");
  Alcotest.(check (option string)) "remove durable" None (Pstructs.Nb_hashmap.get m2 ~tid:0 "k10");
  Alcotest.(check (option string)) "late lost" None (Pstructs.Nb_hashmap.get m2 ~tid:0 "late")

let () =
  Alcotest.run "ordered"
    [
      ( "skiplist",
        [
          Alcotest.test_case "basic" `Quick test_skiplist_basic;
          Alcotest.test_case "ordered iteration" `Quick test_skiplist_ordered_iteration;
          Alcotest.test_case "range query" `Quick test_skiplist_range_query;
          Alcotest.test_case "many keys vs model" `Quick test_skiplist_many_keys;
          Alcotest.test_case "crash recovery" `Quick test_skiplist_crash_recovery;
          Alcotest.test_case "parallel recovery" `Quick test_skiplist_parallel_recovery;
          Alcotest.test_case "concurrent reads" `Quick test_skiplist_concurrent_reads_during_writes;
          QCheck_alcotest.to_alcotest qcheck_skiplist_vs_map;
        ] );
      ( "nb_list_set",
        [
          Alcotest.test_case "basic" `Quick test_set_basic;
          Alcotest.test_case "sorted" `Quick test_set_sorted;
          Alcotest.test_case "concurrent distinct" `Quick test_set_concurrent_distinct;
          Alcotest.test_case "concurrent contention" `Quick test_set_concurrent_contention;
          Alcotest.test_case "epoch churn" `Quick test_set_epoch_churn;
          Alcotest.test_case "crash recovery" `Quick test_set_crash_recovery;
        ] );
      ( "nb_hashmap",
        [
          Alcotest.test_case "basic" `Quick test_nbmap_basic;
          Alcotest.test_case "concurrent distinct" `Quick test_nbmap_concurrent_distinct;
          Alcotest.test_case "contention + churn" `Quick test_nbmap_concurrent_contention_with_churn;
          Alcotest.test_case "crash recovery" `Quick test_nbmap_crash_recovery;
        ] );
    ]
