(* Tests for the memcached-like store and the YCSB workload generator. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config
module Store = Kvstore.Store
module Ycsb = Kvstore.Ycsb

let testing_cfg = { Cfg.testing with max_threads = 4 }

let make_montage_store () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 24) () in
  let esys = E.create ~config:testing_cfg region in
  let map = Pstructs.Mhashmap.create ~buckets:256 esys in
  let store = Store.create (Store.of_mhashmap map) in
  (region, esys, map, store)

let make_mhamt_store () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 24) () in
  let esys = E.create ~config:testing_cfg region in
  let map = Pstructs.Mhamt.create esys in
  let store = Store.create (Store.of_mhamt map) in
  (region, esys, map, store)

let make_dram_store () =
  let map = Baselines.Transient_map.create ~buckets:256 Baselines.Transient_map.Dram in
  Store.create (Store.of_transient_map map)

(* every Store backend, for suites whose semantics must not depend on
   the map underneath *)
let backends =
  [
    ("transient", fun () -> make_dram_store ());
    ( "mhashmap",
      fun () ->
        let _, _, _, store = make_montage_store () in
        store );
    ( "mhamt",
      fun () ->
        let _, _, _, store = make_mhamt_store () in
        store );
  ]

(* ---- memcached semantics ---- *)

let test_set_get_delete () =
  let store = make_dram_store () in
  Alcotest.(check (option string)) "miss" None (Store.get store ~tid:0 "k");
  Store.set store ~tid:0 "k" "v";
  Alcotest.(check (option string)) "hit" (Some "v") (Store.get store ~tid:0 "k");
  Alcotest.(check bool) "delete" true (Store.delete store ~tid:0 "k");
  Alcotest.(check bool) "delete again" false (Store.delete store ~tid:0 "k");
  Alcotest.(check (option string)) "gone" None (Store.get store ~tid:0 "k")

let test_flags_and_cas_ids () =
  let store = make_dram_store () in
  Store.set store ~tid:0 ~flags:42 "k" "v";
  (match Store.get_full store ~tid:0 "k" with
  | Some (data, flags, cas1) ->
      Alcotest.(check string) "data" "v" data;
      Alcotest.(check int) "flags" 42 flags;
      Store.set store ~tid:0 "k" "v2";
      (match Store.get_full store ~tid:0 "k" with
      | Some (_, _, cas2) -> Alcotest.(check bool) "cas id advances" true (cas2 > cas1)
      | None -> Alcotest.fail "expected hit")
  | None -> Alcotest.fail "expected hit")

let test_add_replace () =
  let store = make_dram_store () in
  Alcotest.(check bool) "add new" true (Store.add store ~tid:0 "k" "v1");
  Alcotest.(check bool) "add existing" false (Store.add store ~tid:0 "k" "v2");
  Alcotest.(check (option string)) "still v1" (Some "v1") (Store.get store ~tid:0 "k");
  Alcotest.(check bool) "replace existing" true (Store.replace store ~tid:0 "k" "v3");
  Alcotest.(check bool) "replace missing" false (Store.replace store ~tid:0 "nope" "x");
  Alcotest.(check (option string)) "now v3" (Some "v3") (Store.get store ~tid:0 "k")

let test_incr_decr () =
  let store = make_dram_store () in
  Store.set store ~tid:0 "n" "10";
  Alcotest.(check (option int)) "incr" (Some 15) (Store.incr store ~tid:0 "n" 5);
  Alcotest.(check (option int)) "decr" (Some 3) (Store.decr store ~tid:0 "n" 12);
  Alcotest.(check (option int)) "decr saturates at 0" (Some 0) (Store.decr store ~tid:0 "n" 100);
  Alcotest.(check (option int)) "missing" None (Store.incr store ~tid:0 "missing" 1);
  Store.set store ~tid:0 "s" "not-a-number";
  Alcotest.(check (option int)) "non-numeric" None (Store.incr store ~tid:0 "s" 1)

let test_ttl_expiry () =
  let store = make_dram_store () in
  let now = ref 1000.0 in
  Store.set_clock store (fun () -> !now);
  Store.set store ~tid:0 ~ttl_s:5.0 "session" "data";
  Alcotest.(check (option string)) "alive" (Some "data") (Store.get store ~tid:0 "session");
  now := 1006.0;
  Alcotest.(check (option string)) "expired" None (Store.get store ~tid:0 "session");
  let _, _, _, _, expired = Store.stats store in
  Alcotest.(check int) "expiry counted" 1 expired

let test_stats_counting () =
  let store = make_dram_store () in
  Store.set store ~tid:0 "a" "1";
  ignore (Store.get store ~tid:0 "a");
  ignore (Store.get store ~tid:0 "zzz");
  ignore (Store.delete store ~tid:0 "a");
  let hits, misses, sets, deletes, _ = Store.stats store in
  Alcotest.(check int) "hits" 1 hits;
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check int) "sets" 1 sets;
  Alcotest.(check int) "deletes" 1 deletes

let test_store_crash_recovery () =
  let region, esys, _map, store = make_montage_store () in
  for i = 1 to 50 do
    Store.set store ~tid:0 (Printf.sprintf "key%d" i) (Printf.sprintf "val%d" i)
  done;
  E.sync esys ~tid:0;
  Store.set store ~tid:0 "late" "lost";
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let map2 = Pstructs.Mhashmap.recover ~buckets:256 esys2 payloads in
  let store2 = Store.create (Store.of_mhashmap map2) in
  Alcotest.(check (option string)) "synced item survives with metadata" (Some "val33")
    (Store.get store2 ~tid:0 "key33");
  Alcotest.(check (option string)) "unsynced item lost" None (Store.get store2 ~tid:0 "late")

let test_store_concurrent () =
  let _, _, _, store = make_montage_store () in
  let per = 200 in
  let domains =
    Array.init 3 (fun tid ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Store.set store ~tid (Printf.sprintf "t%d-%d" tid i) "x"
            done))
  in
  Array.iter Domain.join domains;
  let _, _, sets, _, _ = Store.stats store in
  Alcotest.(check int) "all sets counted" (3 * per) sets

let test_cas () =
  let store = make_dram_store () in
  Alcotest.(check bool) "cas on missing" true
    (Store.compare_and_set store ~tid:0 "k" ~cas:1 "x" = Store.Not_found);
  Store.set store ~tid:0 "k" "v1";
  match Store.get_full store ~tid:0 "k" with
  | None -> Alcotest.fail "expected hit"
  | Some (_, _, id) ->
      Alcotest.(check bool) "stale id rejected" true
        (Store.compare_and_set store ~tid:0 "k" ~cas:(id + 999) "x" = Store.Exists);
      Alcotest.(check (option string)) "value untouched" (Some "v1") (Store.get store ~tid:0 "k");
      Alcotest.(check bool) "matching id stores" true
        (Store.compare_and_set store ~tid:0 "k" ~cas:id "v2" = Store.Stored);
      Alcotest.(check (option string)) "value swapped" (Some "v2") (Store.get store ~tid:0 "k");
      Alcotest.(check bool) "old id now stale" true
        (Store.compare_and_set store ~tid:0 "k" ~cas:id "v3" = Store.Exists)

(* The conditional ops must not lose updates under concurrency: N
   domains hammering INCR on one counter must land exactly N*per
   increments, and racing ADDs on one key must admit exactly one
   winner.  Before the backend [update] hook these were get-then-set
   and this test would fail. *)
let test_concurrent_rmw_no_lost_updates () =
  let _, _, _, store = make_montage_store () in
  Store.set store ~tid:0 "counter" "0";
  let per = 500 and workers = 3 in
  let add_wins = Atomic.make 0 in
  let domains =
    Array.init workers (fun i ->
        let tid = i + 1 in
        Domain.spawn (fun () ->
            for j = 1 to per do
              ignore (Store.incr store ~tid "counter" 1);
              if Store.add store ~tid (Printf.sprintf "once-%d" j) "w" then
                Atomic.incr add_wins
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check (option string))
    "no increment lost"
    (Some (string_of_int (workers * per)))
    (Store.get store ~tid:0 "counter");
  Alcotest.(check int) "each add has one winner" per (Atomic.get add_wins)

(* ---- YCSB ---- *)

let test_ycsb_mix_a () =
  let wl = Ycsb.create (Ycsb.workload_a ~records:100 ~value_size:16 ()) in
  let rng = Util.Xoshiro.create 1 in
  let reads = ref 0 and updates = ref 0 and others = ref 0 in
  for _ = 1 to 10_000 do
    match Ycsb.next wl rng with
    | Ycsb.Read _ -> incr reads
    | Ycsb.Update _ -> incr updates
    | Ycsb.Insert _ | Ycsb.Rmw _ -> incr others
  done;
  Alcotest.(check bool) "~50% reads" true (!reads > 4500 && !reads < 5500);
  Alcotest.(check bool) "~50% updates" true (!updates > 4500 && !updates < 5500);
  Alcotest.(check int) "no other ops in A" 0 !others

let test_ycsb_mix_c_read_only () =
  let wl = Ycsb.create (Ycsb.workload_c ~records:100 ~value_size:16 ()) in
  let rng = Util.Xoshiro.create 2 in
  for _ = 1 to 1000 do
    match Ycsb.next wl rng with
    | Ycsb.Read _ -> ()
    | _ -> Alcotest.fail "workload C must be read-only"
  done

let test_ycsb_keys_in_range () =
  let records = 500 in
  let wl = Ycsb.create (Ycsb.workload_b ~records ~value_size:16 ()) in
  let rng = Util.Xoshiro.create 3 in
  for _ = 1 to 2000 do
    match Ycsb.next wl rng with
    | Ycsb.Read key | Ycsb.Update (key, _) ->
        Alcotest.(check bool) "user-prefixed" true (String.length key = 23);
        let id = int_of_string (String.sub key 4 19) in
        Alcotest.(check bool) "record id in range" true (id >= 0 && id < records)
    | _ -> ()
  done

let test_ycsb_values_sized () =
  let wl = Ycsb.create (Ycsb.workload_a ~records:10 ~value_size:77 ()) in
  let rng = Util.Xoshiro.create 4 in
  let rec find_update n =
    if n = 0 then Alcotest.fail "no update drawn"
    else
      match Ycsb.next wl rng with
      | Ycsb.Update (_, v) -> Alcotest.(check int) "value size" 77 (String.length v)
      | _ -> find_update (n - 1)
  in
  find_update 1000

let test_ycsb_load_and_execute () =
  let _, _, _, store = make_montage_store () in
  let wl = Ycsb.create (Ycsb.workload_a ~records:200 ~value_size:32 ()) in
  let rng = Util.Xoshiro.create 5 in
  Ycsb.load wl ~set:(fun k v -> Store.set store ~tid:0 k v) rng;
  for _ = 1 to 1000 do
    Ycsb.execute wl ~tid:0 store (Ycsb.next wl rng)
  done;
  let hits, misses, _, _, _ = Store.stats store in
  Alcotest.(check bool) "reads hit the preloaded records" true (hits > 0 && misses = 0)

(* ---- flush_all watermark semantics, identical across backends ----

   flush_all is O(1): it publishes a cas-id watermark instead of
   deleting keys, so the contract — pre-flush items die (lazily),
   items stored during a delay window survive the deadline, repeated
   flushes move the watermark — must hold for every backend. *)

let flush_all_tests (name, mk) =
  let case label f = Alcotest.test_case (name ^ ": " ^ label) `Quick f in
  [
    case "immediate wipe" (fun () ->
        let store = mk () in
        Store.set store ~tid:0 "a" "A";
        Store.set store ~tid:0 "b" "B";
        Store.flush_all store ();
        Alcotest.(check (option string)) "a gone" None (Store.get store ~tid:0 "a");
        Alcotest.(check (option string)) "b gone" None (Store.get store ~tid:0 "b");
        Store.set store ~tid:0 "c" "C";
        Alcotest.(check (option string)) "later set lands" (Some "C") (Store.get store ~tid:0 "c");
        Alcotest.(check bool) "conditional ops see the wipe" true (Store.add store ~tid:0 "a" "X");
        Alcotest.(check bool) "replace sees the wipe" false (Store.replace store ~tid:0 "b" "X"));
    case "delay watermark" (fun () ->
        let store = mk () in
        let now = ref 1000.0 in
        Store.set_clock store (fun () -> !now);
        Store.set store ~tid:0 "old" "o";
        Store.flush_all store ~delay_s:30.0 ();
        Store.set store ~tid:0 "during" "d";
        Alcotest.(check (option string)) "old visible before deadline" (Some "o")
          (Store.get store ~tid:0 "old");
        now := 1031.0;
        Alcotest.(check (option string)) "old dies at the deadline" None
          (Store.get store ~tid:0 "old");
        Alcotest.(check (option string)) "stored-during-window survives (above watermark)"
          (Some "d")
          (Store.get store ~tid:0 "during"));
    case "repeated flush moves the watermark" (fun () ->
        let store = mk () in
        let now = ref 1000.0 in
        Store.set_clock store (fun () -> !now);
        Store.set store ~tid:0 "a" "A";
        Store.flush_all store ();
        Alcotest.(check (option string)) "first flush took a" None (Store.get store ~tid:0 "a");
        Store.set store ~tid:0 "b" "B";
        Store.flush_all store ~delay_s:10.0 ();
        Store.set store ~tid:0 "c" "C";
        now := 1011.0;
        Alcotest.(check (option string)) "second flush took b" None (Store.get store ~tid:0 "b");
        Alcotest.(check (option string)) "c above the new watermark" (Some "C")
          (Store.get store ~tid:0 "c"));
  ]

let () =
  Alcotest.run "kvstore"
    [
      ( "memcached semantics",
        [
          Alcotest.test_case "set/get/delete" `Quick test_set_get_delete;
          Alcotest.test_case "flags and cas" `Quick test_flags_and_cas_ids;
          Alcotest.test_case "add/replace" `Quick test_add_replace;
          Alcotest.test_case "incr/decr" `Quick test_incr_decr;
          Alcotest.test_case "ttl expiry" `Quick test_ttl_expiry;
          Alcotest.test_case "stats" `Quick test_stats_counting;
          Alcotest.test_case "crash recovery" `Quick test_store_crash_recovery;
          Alcotest.test_case "concurrent" `Quick test_store_concurrent;
          Alcotest.test_case "cas" `Quick test_cas;
          Alcotest.test_case "rmw no lost updates" `Quick test_concurrent_rmw_no_lost_updates;
        ] );
      ("flush_all watermark", List.concat_map flush_all_tests backends);
      ( "ycsb",
        [
          Alcotest.test_case "workload A mix" `Quick test_ycsb_mix_a;
          Alcotest.test_case "workload C read-only" `Quick test_ycsb_mix_c_read_only;
          Alcotest.test_case "keys in range" `Quick test_ycsb_keys_in_range;
          Alcotest.test_case "value sizes" `Quick test_ycsb_values_sized;
          Alcotest.test_case "load and execute" `Quick test_ycsb_load_and_execute;
        ] );
    ]
