(* Mechanical linearizability checking of the nonblocking Montage
   structures: record real concurrent histories (with epoch churn in
   the background, so the DCSS retry paths are exercised) and verify a
   legal linearization exists — the crash-free half of the paper's §4
   correctness argument, checked on actual executions. *)

module E = Montage.Epoch_sys
module Cfg = Montage.Config
module L = Lin_check

let testing_cfg = { Cfg.testing with max_threads = 8 }

let make_esys () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:10 ~capacity:(1 lsl 22) () in
  E.create ~config:testing_cfg region

(* Run [per_thread] ops on each of [threads] domains, with an epoch
   ticker stirring retries; returns all recorded events. *)
let run_history ~threads ~per_thread ~driver esys =
  L.reset_clock ();
  let all = Array.make threads [] in
  let stop = Atomic.make false in
  let ops = Atomic.make 0 in
  (* progress-paced ticker: advance only when the workers have recorded
     new operations since the last tick — epoch churn tracks the
     workload with no wall-clock pacing to race against *)
  let ticker =
    Domain.spawn (fun () ->
        let last = ref (-1) in
        while not (Atomic.get stop) do
          let seen = Atomic.get ops in
          if seen <> !last then begin
            last := seen;
            E.advance_epoch esys ~tid:(threads + 1)
          end
          else Domain.cpu_relax ()
        done)
  in
  let ds =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Util.Xoshiro.create (tid * 31 + 5) in
            let events = ref [] in
            for i = 1 to per_thread do
              events := driver ~tid ~rng ~i :: !events;
              Atomic.incr ops
            done;
            all.(tid) <- !events))
  in
  Array.iter Domain.join ds;
  Atomic.set stop true;
  Domain.join ticker;
  Array.to_list all |> List.concat

let test_nb_stack_linearizable () =
  let esys = make_esys () in
  let s = Pstructs.Nb_stack.create esys in
  let driver ~tid ~rng ~i =
    if Util.Xoshiro.int rng 3 = 0 then L.record L.Pop (fun () -> Pstructs.Nb_stack.pop s ~tid)
    else
      let v = Printf.sprintf "%d-%d" tid i in
      L.record (L.Push v) (fun () ->
          Pstructs.Nb_stack.push s ~tid v;
          None)
  in
  let events = run_history ~threads:3 ~per_thread:7 ~driver esys in
  Alcotest.(check bool) "history linearizes as a stack" true (L.check L.stack_spec events)

let test_nb_queue_linearizable () =
  let esys = make_esys () in
  let q = Pstructs.Nb_queue.create esys in
  let driver ~tid ~rng ~i =
    if Util.Xoshiro.int rng 3 = 0 then L.record L.Deq (fun () -> Pstructs.Nb_queue.dequeue q ~tid)
    else
      let v = Printf.sprintf "%d-%d" tid i in
      L.record (L.Enq v) (fun () ->
          Pstructs.Nb_queue.enqueue q ~tid v;
          None)
  in
  let events = run_history ~threads:3 ~per_thread:7 ~driver esys in
  Alcotest.(check bool) "history linearizes as a FIFO queue" true (L.check L.queue_spec events)

let test_nb_set_linearizable () =
  let esys = make_esys () in
  let s = Pstructs.Nb_list_set.create esys in
  let driver ~tid ~rng ~i:_ =
    (* small key space so adds/removes genuinely conflict *)
    let key = Printf.sprintf "k%d" (Util.Xoshiro.int rng 4) in
    match Util.Xoshiro.int rng 3 with
    | 0 -> L.record (L.Add key) (fun () -> Pstructs.Nb_list_set.add s ~tid key)
    | 1 -> L.record (L.Remove key) (fun () -> Pstructs.Nb_list_set.remove s ~tid key)
    | _ -> L.record (L.Contains key) (fun () -> Pstructs.Nb_list_set.contains s key)
  in
  let events = run_history ~threads:3 ~per_thread:7 ~driver esys in
  Alcotest.(check bool) "history linearizes as a set" true (L.check L.set_spec events)

let test_mvector_linearizable () =
  let esys = make_esys () in
  let v = Pstructs.Mvector.create esys in
  let driver ~tid ~rng ~i =
    match Util.Xoshiro.int rng 4 with
    | 0 ->
        let s = Printf.sprintf "%d-%d" tid i in
        L.record (L.Vpush s) (fun () -> L.VIdx (Pstructs.Mvector.push v ~tid s))
    | 1 -> L.record L.Vpop (fun () -> L.VVal (Pstructs.Mvector.pop v ~tid))
    | 2 ->
        let idx = Util.Xoshiro.int rng 6 in
        L.record (L.Vget idx) (fun () -> L.VVal (Pstructs.Mvector.get v ~tid idx))
    | _ ->
        let idx = Util.Xoshiro.int rng 6 in
        let s = Printf.sprintf "s%d-%d" tid i in
        L.record (L.Vset (idx, s)) (fun () -> L.VOk (Pstructs.Mvector.set v ~tid idx s))
  in
  let events = run_history ~threads:3 ~per_thread:7 ~driver esys in
  Alcotest.(check bool) "history linearizes as a vector" true (L.check L.vector_spec events)

let test_mgraph_linearizable () =
  let esys = make_esys () in
  let g = Pstructs.Mgraph.create ~capacity:8 esys in
  let driver ~tid ~rng ~i =
    (* small id space so vertex/edge ops genuinely conflict *)
    let a = Util.Xoshiro.int rng 4 and b = Util.Xoshiro.int rng 4 in
    match Util.Xoshiro.int rng 6 with
    | 0 ->
        let attrs = Printf.sprintf "v%d-%d" tid i in
        L.record (L.Gadd_vertex (a, attrs)) (fun () ->
            L.GB (Pstructs.Mgraph.add_vertex g ~tid a attrs))
    | 1 -> L.record (L.Gremove_vertex a) (fun () -> L.GB (Pstructs.Mgraph.remove_vertex g ~tid a))
    | 2 ->
        let attrs = Printf.sprintf "e%d-%d" tid i in
        L.record (L.Gadd_edge (a, b, attrs)) (fun () ->
            L.GB (Pstructs.Mgraph.add_edge g ~tid a b attrs))
    | 3 -> L.record (L.Gremove_edge (a, b)) (fun () -> L.GB (Pstructs.Mgraph.remove_edge g ~tid a b))
    | 4 -> L.record (L.Gedge_attrs (a, b)) (fun () -> L.GS (Pstructs.Mgraph.edge_attrs g ~tid a b))
    | _ -> L.record (L.Gvertex_attrs a) (fun () -> L.GS (Pstructs.Mgraph.vertex_attrs g ~tid a))
  in
  let events = run_history ~threads:3 ~per_thread:7 ~driver esys in
  Alcotest.(check bool) "history linearizes as a graph" true (L.check L.graph_spec events)

(* Background-advancer variants: the histories are recorded while the
   auto-spawned advancer ticks asynchronously — with coalescing on and
   a spare region slot, its epoch drain runs sharded across domains —
   so linearizability is checked against the deployment-shaped
   write-back path, not just the manual-tick one. *)

let bg_cfg =
  {
    Cfg.testing with
    max_threads = 8;
    auto_advance = true;
    epoch_length_ns = 300_000;
    coalesce_writebacks = true;
    drain_domains = 2;
  }

let make_bg_esys () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:10 ~capacity:(1 lsl 22) () in
  E.create ~config:bg_cfg region

let run_history_bg ~threads ~per_thread ~driver esys =
  L.reset_clock ();
  let all = Array.make threads [] in
  let ds =
    Array.init threads (fun tid ->
        Domain.spawn (fun () ->
            let rng = Util.Xoshiro.create ((tid * 31) + 5) in
            let events = ref [] in
            for i = 1 to per_thread do
              events := driver ~tid ~rng ~i :: !events
            done;
            all.(tid) <- !events))
  in
  Array.iter Domain.join ds;
  E.stop_background esys;
  Array.to_list all |> List.concat

let test_mstack_linearizable_bg () =
  let esys = make_bg_esys () in
  let s = Pstructs.Mstack.create esys in
  let driver ~tid ~rng ~i =
    if Util.Xoshiro.int rng 3 = 0 then L.record L.Pop (fun () -> Pstructs.Mstack.pop s ~tid)
    else
      let v = Printf.sprintf "%d-%d" tid i in
      L.record (L.Push v) (fun () ->
          Pstructs.Mstack.push s ~tid v;
          None)
  in
  let events = run_history_bg ~threads:3 ~per_thread:7 ~driver esys in
  Alcotest.(check bool) "history linearizes as a stack" true (L.check L.stack_spec events)

let test_nb_set_linearizable_bg () =
  let esys = make_bg_esys () in
  let s = Pstructs.Nb_list_set.create esys in
  let driver ~tid ~rng ~i:_ =
    let key = Printf.sprintf "k%d" (Util.Xoshiro.int rng 4) in
    match Util.Xoshiro.int rng 3 with
    | 0 -> L.record (L.Add key) (fun () -> Pstructs.Nb_list_set.add s ~tid key)
    | 1 -> L.record (L.Remove key) (fun () -> Pstructs.Nb_list_set.remove s ~tid key)
    | _ -> L.record (L.Contains key) (fun () -> Pstructs.Nb_list_set.contains s key)
  in
  let events = run_history_bg ~threads:3 ~per_thread:7 ~driver esys in
  Alcotest.(check bool) "history linearizes as a set" true (L.check L.set_spec events)

(* The checker itself must reject garbage: a dequeue that returns a
   value nobody enqueued, and a FIFO violation between non-overlapping
   operations. *)
let test_checker_rejects_phantom_value () =
  let events =
    [
      { L.op = L.Enq "a"; result = None; invoked = 0; responded = 1 };
      { L.op = L.Deq; result = Some "phantom"; invoked = 2; responded = 3 };
    ]
  in
  Alcotest.(check bool) "phantom rejected" false (L.check L.queue_spec events)

let test_checker_rejects_fifo_violation () =
  (* enq a; enq b (strictly after); then deq -> b with no overlap *)
  let events =
    [
      { L.op = L.Enq "a"; result = None; invoked = 0; responded = 1 };
      { L.op = L.Enq "b"; result = None; invoked = 2; responded = 3 };
      { L.op = L.Deq; result = Some "b"; invoked = 4; responded = 5 };
    ]
  in
  Alcotest.(check bool) "LIFO-on-a-queue rejected" false (L.check L.queue_spec events)

let test_checker_accepts_overlap_reordering () =
  (* two overlapping enqueues may linearize in either order *)
  let events =
    [
      { L.op = L.Enq "a"; result = None; invoked = 0; responded = 3 };
      { L.op = L.Enq "b"; result = None; invoked = 1; responded = 2 };
      { L.op = L.Deq; result = Some "b"; invoked = 4; responded = 5 };
      { L.op = L.Deq; result = Some "a"; invoked = 6; responded = 7 };
    ]
  in
  Alcotest.(check bool) "overlapping order allowed" true (L.check L.queue_spec events)

let test_checker_respects_realtime_order () =
  (* pop before any push completes cannot return the pushed value *)
  let events =
    [
      { L.op = L.Pop; result = Some "x"; invoked = 0; responded = 1 };
      { L.op = L.Push "x"; result = None; invoked = 2; responded = 3 };
    ]
  in
  Alcotest.(check bool) "time travel rejected" false (L.check L.stack_spec events)

let () =
  Alcotest.run "linearizability"
    [
      ( "checker",
        [
          Alcotest.test_case "rejects phantom values" `Quick test_checker_rejects_phantom_value;
          Alcotest.test_case "rejects FIFO violations" `Quick test_checker_rejects_fifo_violation;
          Alcotest.test_case "accepts overlap reordering" `Quick test_checker_accepts_overlap_reordering;
          Alcotest.test_case "respects real-time order" `Quick test_checker_respects_realtime_order;
        ] );
      ( "structures",
        [
          Alcotest.test_case "nb_stack" `Quick test_nb_stack_linearizable;
          Alcotest.test_case "nb_queue" `Quick test_nb_queue_linearizable;
          Alcotest.test_case "nb_list_set" `Quick test_nb_set_linearizable;
          Alcotest.test_case "mvector" `Quick test_mvector_linearizable;
          Alcotest.test_case "mgraph" `Quick test_mgraph_linearizable;
        ] );
      ( "background-advancer",
        [
          Alcotest.test_case "mstack" `Quick test_mstack_linearizable_bg;
          Alcotest.test_case "nb_list_set" `Quick test_nb_set_linearizable_bg;
        ] );
    ]
