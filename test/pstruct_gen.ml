(* Shared key/value generators for the pstructs test suites.

   Every structure's tests used to roll their own [Printf.sprintf]
   key shapes; they live here once so the suites (and their qcheck
   scripts) stay comparable across structures. *)

(* zero-padded keys: stable lexicographic order matches numeric order *)
let key3 i = Printf.sprintf "key%03d" i
let k2 i = Printf.sprintf "k%02d" i
let k3 i = Printf.sprintf "k%03d" i

(* unpadded short keys/values *)
let k i = Printf.sprintf "k%d" i
let v i = Printf.sprintf "v%d" i

(* per-thread disjoint keyspace *)
let tid_key tid i = Printf.sprintf "t%d-%d" tid i

(* small-domain key for model scripts: collisions on purpose *)
let num_key i = "key" ^ string_of_int i

(* random key over a 30-slot domain, for crash-injection scripts *)
let rand_k2 rng = k2 (Util.Xoshiro.int rng 30)

(* qcheck script: (key index, payload string) pairs over a small key
   domain so puts/removes/overwrites all get exercised *)
let script_arb = QCheck.(list (pair (int_range 0 20) small_string))

(* degenerate hash: [buckets] distinct values force collision leaves /
   deep chains in any hashed structure *)
let degenerate_hash buckets key = Hashtbl.hash key mod buckets
