(* Volatile payload mirrors: unit coverage of the DRAM read cache
   (warm hits charge no media, refresh on pset, carry-over across
   copying updates, drop on pdelete, clock eviction under a byte
   budget, oversized bypass, off switch), the decoded-value memo layer
   ([Payload.Str]/[Payload.Kv]), mirror coherence under Pcheck
   [Enforce] with racing mutators, a QCheck property driving random op
   mixes against a model, and a [Pcheck.explore] crash matrix asserting
   recovery never observes pre-crash mirror contents.

   Every esys here pins [payload_mirror] explicitly (rather than
   inheriting MONTAGE_MIRROR) so the CI matrix legs exercise both
   library paths without inverting these assertions. *)

module E = Montage.Epoch_sys
module R = Nvm.Region
module P = Nvm.Pcheck
module Cfg = Montage.Config
module Payload = Montage.Payload

let on_cfg =
  { Cfg.testing with max_threads = 4; payload_mirror = true; mirror_max_bytes = 1 lsl 20 }

let off_cfg = { on_cfg with payload_mirror = false }

let make_esys ?(cfg = on_cfg) () =
  let region = R.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 22) () in
  (region, E.create ~config:cfg region)

(* ---- the byte mirror ---- *)

let test_warm_reads_charge_no_media () =
  let region, esys = make_esys () in
  let p = E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 (Bytes.of_string "hello")) in
  let base = (R.stats region).R.lines_read in
  for _ = 1 to 100 do
    Alcotest.(check string) "warm read" "hello" (Bytes.to_string (E.pget esys ~tid:0 p))
  done;
  Alcotest.(check int) "no media lines charged" base (R.stats region).R.lines_read;
  let st = E.mirror_stats esys in
  Alcotest.(check bool) "hits counted" true (st.E.hits >= 100);
  Alcotest.(check int) "born warm: no miss ever" 0 st.E.misses

let test_cold_after_recovery () =
  let region, esys = make_esys () in
  let _p = E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 (Bytes.of_string "persist-me")) in
  E.sync esys ~tid:0;
  E.stop_background esys;
  R.crash region;
  let esys2, payloads = E.recover ~config:on_cfg region in
  Alcotest.(check int) "one payload survives" 1 (Array.length payloads);
  let st0 = E.mirror_stats esys2 in
  Alcotest.(check int) "recovery starts cold: nothing resident" 0 st0.E.resident_bytes;
  Alcotest.(check int) "no hits before any read" 0 st0.E.hits;
  Alcotest.(check string) "first read decodes from media" "persist-me"
    (Bytes.to_string (E.pget_unsafe esys2 payloads.(0)));
  let st1 = E.mirror_stats esys2 in
  Alcotest.(check bool) "first read was a miss" true (st1.E.misses > st0.E.misses);
  Alcotest.(check string) "second read is warm" "persist-me"
    (Bytes.to_string (E.pget_unsafe esys2 payloads.(0)));
  Alcotest.(check int) "no further miss" st1.E.misses (E.mirror_stats esys2).E.misses;
  E.stop_background esys2

let test_pset_in_place_refreshes () =
  let _, esys = make_esys () in
  E.with_op esys ~tid:0 (fun () ->
      let p = E.pnew esys ~tid:0 (Bytes.of_string "v1") in
      let p' = E.pset esys ~tid:0 p (Bytes.of_string "v2") in
      Alcotest.(check bool) "same-epoch pset is in place" true (p == p');
      let before = (E.mirror_stats esys).E.misses in
      Alcotest.(check string) "mirror refreshed" "v2" (Bytes.to_string (E.pget esys ~tid:0 p'));
      Alcotest.(check int) "still warm" before (E.mirror_stats esys).E.misses)

let test_copying_pset_carries_mirror () =
  let _, esys = make_esys () in
  let p = E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 (Bytes.of_string "v1")) in
  E.advance_epoch esys ~tid:0;
  let p' = E.with_op esys ~tid:0 (fun () -> E.pset esys ~tid:0 p (Bytes.of_string "v2!")) in
  Alcotest.(check bool) "cross-epoch pset copies" true (p != p');
  let before = (E.mirror_stats esys).E.misses in
  Alcotest.(check string) "fresh handle is warm" "v2!" (Bytes.to_string (E.pget esys ~tid:0 p'));
  Alcotest.(check int) "no miss on the fresh handle" before (E.mirror_stats esys).E.misses;
  Alcotest.(check int) "old mirror dropped with its handle" 3
    (E.mirror_stats esys).E.resident_bytes

let test_pdelete_drops_mirror () =
  let _, esys = make_esys () in
  E.with_op esys ~tid:0 (fun () ->
      let p = E.pnew esys ~tid:0 (Bytes.of_string "doomed") in
      Alcotest.(check int) "resident while live" 6 (E.mirror_stats esys).E.resident_bytes;
      E.pdelete esys ~tid:0 p;
      Alcotest.(check int) "dropped on delete" 0 (E.mirror_stats esys).E.resident_bytes)

let test_clock_eviction_respects_budget () =
  let cfg = { on_cfg with Cfg.mirror_max_bytes = 4096 } in
  let _, esys = make_esys ~cfg () in
  let payloads =
    Array.init 64 (fun i ->
        E.with_op esys ~tid:0 (fun () ->
            E.pnew esys ~tid:0 (Bytes.make 128 (Char.chr (65 + (i mod 26))))))
  in
  let st = E.mirror_stats esys in
  Alcotest.(check bool) "budget respected" true (st.E.resident_bytes <= 4096);
  Alcotest.(check bool) "clock evicted victims" true (st.E.evictions > 0);
  (* evicted entries re-read correctly (cold path), warm ones too *)
  Array.iteri
    (fun i p ->
      let b = E.pget esys ~tid:0 p in
      Alcotest.(check int) "length survives eviction" 128 (Bytes.length b);
      Alcotest.(check char) "content survives eviction" (Char.chr (65 + (i mod 26))) (Bytes.get b 0))
    payloads;
  Alcotest.(check bool) "still within budget after refills" true
    ((E.mirror_stats esys).E.resident_bytes <= 4096)

let test_oversized_payload_bypasses_cache () =
  let cfg = { on_cfg with Cfg.mirror_max_bytes = 256 } in
  let _, esys = make_esys ~cfg () in
  let big = Bytes.make 1024 'x' in
  let p = E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 big) in
  Alcotest.(check int) "larger than the whole budget: uncached" 0
    (E.mirror_stats esys).E.resident_bytes;
  Alcotest.(check int) "reads still correct" 1024 (Bytes.length (E.pget esys ~tid:0 p));
  Alcotest.(check int) "still uncached after the read" 0 (E.mirror_stats esys).E.resident_bytes

let test_mirror_off_is_inert () =
  let region, esys = make_esys ~cfg:off_cfg () in
  let p = E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 (Bytes.of_string "plain")) in
  let base = (R.stats region).R.lines_read in
  Alcotest.(check string) "read ok" "plain" (Bytes.to_string (E.pget esys ~tid:0 p));
  Alcotest.(check bool) "every read charges media" true ((R.stats region).R.lines_read > base);
  let st = E.mirror_stats esys in
  Alcotest.(check int) "no mirror traffic at all" 0
    (st.E.hits + st.E.misses + st.E.evictions + st.E.resident_bytes)

(* ---- the decoded-value memo ---- *)

let test_memo_returns_same_boxed_value () =
  let _, esys = make_esys () in
  let h = E.with_op esys ~tid:0 (fun () -> Payload.Str.pnew esys ~tid:0 "shared") in
  let a = Payload.Str.get esys ~tid:0 h in
  let b = Payload.Str.get esys ~tid:0 h in
  Alcotest.(check string) "value" "shared" a;
  Alcotest.(check bool) "warm gets return the same boxed string" true (a == b)

let test_memo_invalidated_by_set () =
  let _, esys = make_esys () in
  E.with_op esys ~tid:0 (fun () ->
      let h = Payload.Str.pnew esys ~tid:0 "old" in
      let h' = Payload.Str.set esys ~tid:0 h "new" in
      Alcotest.(check string) "memo follows the mutation" "new" (Payload.Str.get esys ~tid:0 h'))

let test_kv_value_only_memo () =
  let _, esys = make_esys () in
  let h = E.with_op esys ~tid:0 (fun () -> Payload.Kv.pnew esys ~tid:0 ("key", "value")) in
  Alcotest.(check string) "value without the key" "value" (Payload.Kv.get_value esys ~tid:0 h);
  (* full-pair read after a value-only read: both memo shapes coexist *)
  let k, v = Payload.Kv.get esys ~tid:0 h in
  Alcotest.(check string) "key" "key" k;
  Alcotest.(check string) "value" "value" v;
  Alcotest.(check string) "value-only again" "value" (Payload.Kv.get_value esys ~tid:0 h)

(* Regression: the stale-memo race.  A lock-free reader decodes the old
   mirror bytes, an in-place pset then installs new bytes, and the
   reader's trailing publish arrives last — [memo_store]'s physical-
   identity check ([src] must still be the resident mirror) must drop
   it, or the old decoded value would be served warm forever against a
   byte mirror that is fully current (invisible to the checker). *)
let test_memo_store_rejects_stale_src () =
  let _, esys = make_esys () in
  E.with_op esys ~tid:0 (fun () ->
      let h = Payload.Str.pnew esys ~tid:0 "old" in
      (* the reader's decode source: the mirror bytes before the pset *)
      let src = E.pget esys ~tid:0 h in
      let h' = Payload.Str.set esys ~tid:0 h "new" in
      Alcotest.(check bool) "same-epoch pset is in place" true (h == h');
      (* the reader loses the race and publishes its stale decode *)
      E.memo_store esys h ~src (Payload.Str.Memo "old");
      Alcotest.(check string) "stale publish dropped, not served" "new"
        (Payload.Str.get esys ~tid:0 h))

(* A full-pair [Kv.get] over a value-only memo upgrades the slot in
   place, reusing the memoized value string (physical equality) instead
   of re-decoding, and later value-only reads hit the upgraded pair. *)
let test_kv_memo_upgrade_reuses_value () =
  let _, esys = make_esys () in
  let h = E.with_op esys ~tid:0 (fun () -> E.pnew esys ~tid:0 (Payload.Kv_content.encode ("key", "value"))) in
  let v1 = Payload.Kv.get_value esys ~tid:0 h in
  let k, v2 = Payload.Kv.get esys ~tid:0 h in
  Alcotest.(check string) "key" "key" k;
  Alcotest.(check bool) "upgrade reuses the memoized value string" true (v1 == v2);
  Alcotest.(check bool) "later value-only reads hit the pair" true
    (Payload.Kv.get_value esys ~tid:0 h == v2)

let test_memo_dies_with_eviction () =
  let cfg = { on_cfg with Cfg.mirror_max_bytes = 64 } in
  let _, esys = make_esys ~cfg () in
  let h = E.with_op esys ~tid:0 (fun () -> Payload.Str.pnew esys ~tid:0 "first") in
  (* fill past the budget so [h]'s mirror (and with it the memo) is evicted *)
  for i = 0 to 7 do
    ignore
      (E.with_op esys ~tid:0 (fun () ->
           Payload.Str.pnew esys ~tid:0 (Printf.sprintf "filler-%02d" i)))
  done;
  Alcotest.(check string) "evicted handle re-decodes from media" "first"
    (Payload.Str.get esys ~tid:0 h)

(* ---- coherence under Enforce ---- *)

(* Racing mutators over shared keys with the checker in [Enforce] mode:
   any pget served stale mirror bytes would raise [Pcheck.Violation]
   (Mirror_stale) inside a domain and fail the join. *)
let test_concurrent_coherence_under_enforce () =
  let _, esys = make_esys () in
  let m = Pstructs.Mhashmap.create ~buckets:64 esys in
  let keys = Array.init 32 (fun i -> Printf.sprintf "k%02d" i) in
  Array.iter (fun k -> ignore (Pstructs.Mhashmap.put m ~tid:0 k "0")) keys;
  let domains =
    Array.init 3 (fun i ->
        let tid = i + 1 in
        Domain.spawn (fun () ->
            for j = 0 to 1499 do
              let k = keys.(j * (tid + 7) mod Array.length keys) in
              match j mod 4 with
              | 0 -> ignore (Pstructs.Mhashmap.put m ~tid k (Printf.sprintf "%d-%d" tid j))
              | 1 -> ignore (Pstructs.Mhashmap.get m ~tid k)
              | 2 ->
                  ignore
                    (Pstructs.Mhashmap.update m ~tid k (function
                      | Some v when String.length v < 64 -> Some (v ^ "+")
                      | Some _ -> Some "0"
                      | None -> Some "fresh"))
              | _ ->
                  if j mod 16 = 3 then ignore (Pstructs.Mhashmap.remove m ~tid k)
                  else ignore (Pstructs.Mhashmap.get m ~tid k)
            done))
  in
  Array.iter Domain.join domains;
  (match E.checker esys with
  | Some c -> Alcotest.(check int) "zero violations under Enforce" 0 (List.length (P.violations c))
  | None -> Alcotest.fail "testing config should attach a checker");
  let st = E.mirror_stats esys in
  Alcotest.(check bool) "the race actually exercised the mirror" true (st.E.hits > 0)

(* Random op mixes against a model map, epoch boundaries sprinkled in
   so copying psets and anti-payload paths are on the table; the
   Enforce checker cross-checks every mirror read byte-for-byte. *)
let prop_mirrored_map_matches_model =
  QCheck.Test.make ~count:40 ~name:"mirrored mhashmap ≡ model over random op mixes"
    QCheck.(small_list (triple (int_bound 3) (int_bound 15) (int_bound 99)))
    (fun ops ->
      let _, esys = make_esys () in
      let m = Pstructs.Mhashmap.create ~buckets:16 esys in
      let model = Hashtbl.create 16 in
      let ok = ref true in
      List.iter
        (fun (op, ki, vi) ->
          let k = Printf.sprintf "k%d" ki and v = Printf.sprintf "v%d" vi in
          if vi mod 11 = 0 then E.advance_epoch esys ~tid:0;
          match op with
          | 0 ->
              ignore (Pstructs.Mhashmap.put m ~tid:0 k v);
              Hashtbl.replace model k v
          | 1 -> if Pstructs.Mhashmap.get m ~tid:0 k <> Hashtbl.find_opt model k then ok := false
          | 2 ->
              ignore (Pstructs.Mhashmap.remove m ~tid:0 k);
              Hashtbl.remove model k
          | _ -> (
              ignore
                (Pstructs.Mhashmap.update m ~tid:0 k (function
                  | Some s -> Some (s ^ "+")
                  | None -> None));
              match Hashtbl.find_opt model k with
              | Some s -> Hashtbl.replace model k (s ^ "+")
              | None -> ()))
        ops;
      let got = List.sort compare (Pstructs.Mhashmap.to_alist m ~tid:0) in
      let want = List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model []) in
      !ok && got = want)

(* ---- crash matrix ---- *)

let logged_esys () =
  let region = R.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 18) () in
  let c = R.enable_pcheck ~mode:P.Enforce ~log_events:true region in
  let esys = E.create ~config:on_cfg region in
  (region, c, esys)

let recover_cfg = { on_cfg with Cfg.pcheck = Cfg.Pcheck_off }

(* Warm every mirror, then overwrite the values so DRAM state and the
   (lagging) media disagree; enumerate every fence-respecting crash
   state.  A recovery that could observe pre-crash mirrors would
   resurrect b-values in states where only the a-values are durable —
   instead every recovered pair must decode from the image itself, and
   the recovered esys must start with nothing resident. *)
let test_crash_matrix_recovery_is_cold () =
  let _, c, esys = logged_esys () in
  let m = Pstructs.Mhashmap.create ~buckets:8 esys in
  let written = Hashtbl.create 16 in
  for i = 0 to 5 do
    let k = Printf.sprintf "k%d" i in
    ignore (Pstructs.Mhashmap.put m ~tid:0 k ("a" ^ string_of_int i));
    Hashtbl.replace written (k, "a" ^ string_of_int i) ()
  done;
  E.sync esys ~tid:0;
  for i = 0 to 5 do
    ignore (Pstructs.Mhashmap.get m ~tid:0 (Printf.sprintf "k%d" i))
  done;
  for i = 0 to 5 do
    let k = Printf.sprintf "k%d" i in
    ignore (Pstructs.Mhashmap.put m ~tid:0 k ("b" ^ string_of_int i));
    Hashtbl.replace written (k, "b" ^ string_of_int i) ()
  done;
  E.advance_epoch esys ~tid:0;
  E.advance_epoch esys ~tid:0;
  let report =
    P.explore ~max_states:400 c (fun image ->
        match E.recover ~config:recover_cfg (R.of_image ~latency:Nvm.Latency.zero ~max_threads:8 image) with
        | exception _ -> false
        | esys2, payloads ->
            let st0 = E.mirror_stats esys2 in
            st0.E.resident_bytes = 0
            && st0.E.hits = 0
            &&
            let m2 = Pstructs.Mhashmap.recover ~buckets:8 esys2 payloads in
            List.for_all
              (fun (k, v) ->
                Hashtbl.mem written (k, v) && Pstructs.Mhashmap.get m2 ~tid:0 k = Some v)
              (Pstructs.Mhashmap.to_alist m2 ~tid:0))
  in
  Alcotest.(check bool) "states explored" true (report.P.states > 0);
  Alcotest.(check int) "recovery never observes pre-crash mirrors" 0 report.P.failures

let () =
  Alcotest.run "mirror"
    [
      ( "byte mirror",
        [
          Alcotest.test_case "warm reads charge no media" `Quick test_warm_reads_charge_no_media;
          Alcotest.test_case "cold after recovery" `Quick test_cold_after_recovery;
          Alcotest.test_case "pset in place refreshes" `Quick test_pset_in_place_refreshes;
          Alcotest.test_case "copying pset carries mirror" `Quick test_copying_pset_carries_mirror;
          Alcotest.test_case "pdelete drops mirror" `Quick test_pdelete_drops_mirror;
          Alcotest.test_case "clock eviction respects budget" `Quick
            test_clock_eviction_respects_budget;
          Alcotest.test_case "oversized payload bypasses" `Quick
            test_oversized_payload_bypasses_cache;
          Alcotest.test_case "mirror off is inert" `Quick test_mirror_off_is_inert;
        ] );
      ( "decoded-value memo",
        [
          Alcotest.test_case "same boxed value" `Quick test_memo_returns_same_boxed_value;
          Alcotest.test_case "invalidated by set" `Quick test_memo_invalidated_by_set;
          Alcotest.test_case "kv value-only memo" `Quick test_kv_value_only_memo;
          Alcotest.test_case "stale memo publish rejected" `Quick
            test_memo_store_rejects_stale_src;
          Alcotest.test_case "kv memo upgrade reuses value" `Quick
            test_kv_memo_upgrade_reuses_value;
          Alcotest.test_case "memo dies with eviction" `Quick test_memo_dies_with_eviction;
        ] );
      ( "coherence",
        [
          Alcotest.test_case "concurrent mutators under Enforce" `Quick
            test_concurrent_coherence_under_enforce;
          QCheck_alcotest.to_alcotest prop_mirrored_map_matches_model;
        ] );
      ( "crash matrix",
        [ Alcotest.test_case "recovery is cold" `Quick test_crash_matrix_recovery_is_cold ] );
    ]
