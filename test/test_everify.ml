(* Tests for the epoch-verified CAS (DCSS) primitives that Montage's
   nonblocking structures build on (§3.2–3.3). *)

module E = Montage.Epoch_sys
module V = Montage.Everify
module Cfg = Montage.Config

let testing_cfg = { Cfg.testing with max_threads = 4 }

let make () =
  let region = Nvm.Region.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 20) () in
  E.create ~config:testing_cfg region

let test_cas_verify_same_epoch_succeeds () =
  let esys = make () in
  let cell = V.make 1 in
  E.begin_op esys ~tid:0;
  Alcotest.(check bool) "succeeds" true (V.cas_verify esys ~tid:0 cell ~expect:1 ~desired:2);
  Alcotest.(check int) "value installed" 2 (V.load_verify esys cell);
  E.end_op esys ~tid:0

let test_cas_verify_wrong_expect_fails () =
  let esys = make () in
  let cell = V.make 1 in
  E.begin_op esys ~tid:0;
  Alcotest.(check bool) "fails" false (V.cas_verify esys ~tid:0 cell ~expect:9 ~desired:2);
  Alcotest.(check int) "unchanged" 1 (V.load_verify esys cell);
  E.end_op esys ~tid:0

let test_cas_verify_fails_after_epoch_advance () =
  let esys = make () in
  let cell = V.make 1 in
  E.begin_op esys ~tid:0;
  (* the clock moves while the op is pending: the DCSS must fail even
     though the cell value still matches *)
  E.advance_epoch esys ~tid:1;
  Alcotest.(check bool) "fails on stale epoch" false
    (V.cas_verify esys ~tid:0 cell ~expect:1 ~desired:2);
  Alcotest.(check int) "value untouched" 1 (V.load_verify esys cell);
  E.end_op esys ~tid:0

let test_cas_verify_outside_op_rejected () =
  let esys = make () in
  let cell = V.make 1 in
  Alcotest.check_raises "requires an operation"
    (Invalid_argument "Everify.cas_verify outside an operation") (fun () ->
      ignore (V.cas_verify esys ~tid:0 cell ~expect:1 ~desired:2))

let test_load_verify_helps_descriptor () =
  (* install a descriptor whose epoch is stale; a load must resolve it
     (to failure) and return the original value without hanging *)
  let esys = make () in
  let cell = V.make 10 in
  E.begin_op esys ~tid:0;
  E.advance_epoch esys ~tid:1;
  ignore (V.cas_verify esys ~tid:0 cell ~expect:10 ~desired:99);
  E.end_op esys ~tid:0;
  Alcotest.(check int) "reverted by helpers" 10 (V.load_verify esys cell)

let test_plain_cas () =
  let esys = make () in
  let cell = V.make 5 in
  Alcotest.(check bool) "cas ok" true (V.cas esys cell ~expect:5 ~desired:6);
  Alcotest.(check bool) "cas stale" false (V.cas esys cell ~expect:5 ~desired:7);
  Alcotest.(check int) "final" 6 (V.load_verify esys cell)

let test_peek_never_blocks () =
  let cell = V.make "x" in
  Alcotest.(check string) "peek" "x" (V.peek cell)

(* ---- helper paths with a descriptor deterministically in flight ---- *)

let test_peek_with_descriptor_in_flight () =
  let esys = make () in
  let cell = V.make 10 in
  V.install_pending_for_testing cell ~expect:10 ~desired:99 ~epoch:(E.current_epoch esys);
  (* peek never helps: it reports the value the cell reverts to *)
  Alcotest.(check int) "peek sees expect" 10 (V.peek cell);
  (* the descriptor was left in flight; load_verify completes it, and
     the epoch is still current so it completes to success *)
  Alcotest.(check int) "helped to desired" 99 (V.load_verify esys cell);
  Alcotest.(check int) "peek after release" 99 (V.peek cell)

let test_cas_helps_pending_to_success () =
  let esys = make () in
  let cell = V.make 10 in
  V.install_pending_for_testing cell ~expect:10 ~desired:99 ~epoch:(E.current_epoch esys);
  (* cas must first complete the in-flight DCSS (to success: the clock
     still matches), so a cas expecting the old value loses *)
  Alcotest.(check bool) "expect superseded by helping" false (V.cas esys cell ~expect:10 ~desired:0);
  Alcotest.(check int) "descriptor completed first" 99 (V.peek cell);
  Alcotest.(check bool) "cas on released value" true (V.cas esys cell ~expect:99 ~desired:1)

let test_cas_helps_pending_to_failure () =
  let esys = make () in
  let cell = V.make 10 in
  (* stale descriptor epoch: any helper must decide failure and revert *)
  V.install_pending_for_testing cell ~expect:10 ~desired:99 ~epoch:(E.current_epoch esys - 1);
  Alcotest.(check bool) "helped to failure, then cas applies" true
    (V.cas esys cell ~expect:10 ~desired:5);
  Alcotest.(check int) "reverted then updated" 5 (V.load_verify esys cell)

let test_concurrent_counter_linearizes () =
  (* N domains increment an epoch-verified counter; with a concurrent
     epoch ticker forcing retries, the final count must still be exact *)
  let esys = make () in
  let cell = V.make 0 in
  let per = 300 in
  let stop = Atomic.make false in
  let ops = Atomic.make 0 in
  (* progress-paced ticker: one advance per observed batch of
     increments, so retries are forced without any wall-clock pacing *)
  let ticker =
    Domain.spawn (fun () ->
        let last = ref (-1) in
        while not (Atomic.get stop) do
          let seen = Atomic.get ops in
          if seen <> !last then begin
            last := seen;
            E.advance_epoch esys ~tid:3
          end
          else Domain.cpu_relax ()
        done)
  in
  let incr_worker tid () =
    for _ = 1 to per do
      let rec attempt () =
        E.begin_op esys ~tid;
        let v = V.load_verify esys cell in
        let ok = V.cas_verify esys ~tid cell ~expect:v ~desired:(v + 1) in
        E.end_op esys ~tid;
        if not ok then attempt ()
      in
      attempt ();
      Atomic.incr ops
    done
  in
  let ds = Array.init 2 (fun tid -> Domain.spawn (incr_worker tid)) in
  Array.iter Domain.join ds;
  Atomic.set stop true;
  Domain.join ticker;
  Alcotest.(check int) "exact count under epoch churn" (2 * per) (V.load_verify esys cell)

let qcheck_dcss_respects_epoch =
  QCheck.Test.make ~name:"cas_verify succeeds iff value matches and epoch unchanged" ~count:200
    QCheck.(triple bool bool small_int)
    (fun (advance, wrong_expect, seed) ->
      ignore seed;
      let esys = make () in
      let cell = V.make 7 in
      E.begin_op esys ~tid:0;
      if advance then E.advance_epoch esys ~tid:1;
      let expect = if wrong_expect then 8 else 7 in
      let result = V.cas_verify esys ~tid:0 cell ~expect ~desired:42 in
      E.end_op esys ~tid:0;
      let should_succeed = (not advance) && not wrong_expect in
      result = should_succeed
      && V.load_verify esys cell = (if should_succeed then 42 else 7))

let () =
  Alcotest.run "everify"
    [
      ( "dcss",
        [
          Alcotest.test_case "same epoch succeeds" `Quick test_cas_verify_same_epoch_succeeds;
          Alcotest.test_case "wrong expect fails" `Quick test_cas_verify_wrong_expect_fails;
          Alcotest.test_case "stale epoch fails" `Quick test_cas_verify_fails_after_epoch_advance;
          Alcotest.test_case "outside op rejected" `Quick test_cas_verify_outside_op_rejected;
          Alcotest.test_case "load helps descriptor" `Quick test_load_verify_helps_descriptor;
          Alcotest.test_case "plain cas" `Quick test_plain_cas;
          Alcotest.test_case "peek" `Quick test_peek_never_blocks;
          Alcotest.test_case "peek with descriptor in flight" `Quick
            test_peek_with_descriptor_in_flight;
          Alcotest.test_case "cas helps to success" `Quick test_cas_helps_pending_to_success;
          Alcotest.test_case "cas helps to failure" `Quick test_cas_helps_pending_to_failure;
          QCheck_alcotest.to_alcotest qcheck_dcss_respects_epoch;
        ] );
      ( "concurrency",
        [ Alcotest.test_case "counter under epoch churn" `Quick test_concurrent_counter_linearizes ] );
    ]
