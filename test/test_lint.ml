(* Montalint fixture-corpus tests: each known-bad module under
   test/lint_fixtures/ must produce exactly its expected findings
   (rule id and line, in source order) and each known-clean sibling
   must produce none — the rules fire where designed and nowhere
   else.  The analyzer reads the fixtures' .cmt files straight out of
   the build tree, the same artifacts the @lint alias consumes. *)

(* [dune runtest] runs us in _build/default/test; [dune exec] from the
   repo root.  Accept either. *)
let cmt name =
  let rel =
    Printf.sprintf "lint_fixtures/.lint_fixtures.objs/byte/lint_fixtures__%s.cmt" name
  in
  if Sys.file_exists rel then rel else Filename.concat "_build/default/test" rel

let findings name =
  match Lint.Engine.lint_cmt (cmt name) with
  | Some (_, fs) -> List.sort Lint.Rule.compare_position fs
  | None -> Alcotest.failf "no implementation cmt for fixture %s" name

let observed fs =
  List.map (fun f -> (Lint.Rule.to_string f.Lint.Rule.rule, f.Lint.Rule.line)) fs

let rule_line = Alcotest.(pair string int)

let check_fixture name expected () =
  Alcotest.(check (list rule_line)) name expected (observed (findings name))

(* Expected (rule, line) pairs track the fixture sources: if a fixture
   is edited, re-run montalint over the fixture tree to refresh. *)
let bad_cases =
  [
    ("Bad_r0", [ ("R4", 8); ("R0", 8) ]);
    ("Bad_r1", [ ("R1", 11); ("R1", 12) ]);
    ("Bad_r2", [ ("R2", 8); ("R2", 9) ]);
    ("Bad_r3", [ ("R3", 10); ("R3", 11) ]);
    ("Bad_r4", [ ("R4", 7); ("R4", 8) ]);
    ("Bad_r5", [ ("R5", 8); ("R5", 12); ("R5", 19) ]);
  ]

let clean_cases = [ "Clean_r1"; "Clean_r2"; "Clean_r3"; "Clean_r4"; "Clean_r5" ]

(* The malformed allow in Bad_r0 must not suppress the failwith it sits
   on, and its detail must say why it was rejected. *)
let test_malformed_allow_details () =
  let fs = findings "Bad_r0" in
  let r0 = List.find (fun f -> f.Lint.Rule.rule = Lint.Rule.R0) fs in
  if
    not
      (String.length r0.detail >= 9
      && String.sub r0.detail 0 9 = "malformed")
  then Alcotest.failf "unexpected R0 detail: %s" r0.detail

(* Baseline round-trip: grandfathering the bad-fixture findings makes
   the diff empty; a baseline missing one of them reports exactly that
   one as fresh; an entry with no matching finding is stale. *)
let test_baseline_diff () =
  let all = List.concat_map (fun (n, _) -> findings n) bad_cases in
  let file = Filename.temp_file "montalint" ".baseline" in
  Lint.Baseline.save file all;
  let fresh, stale = Lint.Baseline.diff (Lint.Baseline.load file) all in
  Alcotest.(check int) "full baseline: no fresh" 0 (List.length fresh);
  Alcotest.(check int) "full baseline: no stale" 0 (List.length stale);
  (match all with
  | hd :: tl ->
      Lint.Baseline.save file tl;
      let fresh, _ = Lint.Baseline.diff (Lint.Baseline.load file) all in
      Alcotest.(check (list rule_line))
        "missing entry resurfaces"
        [ (Lint.Rule.to_string hd.rule, hd.line) ]
        (observed fresh);
      Lint.Baseline.save file all;
      let _, stale = Lint.Baseline.diff (Lint.Baseline.load file) tl in
      Alcotest.(check int) "removed finding goes stale" 1 (List.length stale)
  | [] -> Alcotest.fail "fixture corpus produced no findings");
  Sys.remove file

let () =
  Alcotest.run "lint"
    [
      ( "known-bad",
        List.map
          (fun (name, expected) ->
            Alcotest.test_case name `Quick (check_fixture name expected))
          bad_cases );
      ( "known-clean",
        List.map
          (fun name -> Alcotest.test_case name `Quick (check_fixture name []))
          clean_cases );
      ( "machinery",
        [
          Alcotest.test_case "malformed allow is rejected with detail" `Quick
            test_malformed_allow_details;
          Alcotest.test_case "baseline multiset diff" `Quick test_baseline_diff;
        ] );
    ]
