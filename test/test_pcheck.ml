(* Tests for Pcheck, the persistency-ordering checker: each correctness
   rule triggered by a deliberately buggy access sequence, each lint
   counted, the crash-state enumerator catching a missing fence, and
   stock structures (Montage map, Friedman queue, NVTraverse map)
   running clean under [Enforce]. *)

module P = Nvm.Pcheck
module R = Nvm.Region
module E = Montage.Epoch_sys
module Cfg = Montage.Config

let make_region ?(capacity = 1 lsl 16) () =
  R.create ~latency:Nvm.Latency.zero ~max_threads:4 ~capacity ()

let checked ?(mode = P.Record) ?log_events ?capacity () =
  let r = make_region ?capacity () in
  let c = R.enable_pcheck ~mode ?log_events r in
  (r, c)

let count_violations c pred = List.length (List.filter pred (P.violations c))

let lint_count c kind =
  List.fold_left (fun acc (k, _, n) -> if k = kind then acc + n else acc) 0 (P.lint_counts c)

(* ---- rule: read-unfenced-after-crash (the seeded missing-flush bug) ---- *)

let test_missing_flush_detected () =
  let r, c = checked () in
  (* bug: the "durable" record is stored but never written back; the
     crash spontaneously evicts the dirty line, so recovery reads data
     that only persisted by luck *)
  R.write_string r ~off:0 "not actually durable";
  R.crash ~evict_dirty:1.0 r;
  let (_ : string) = R.read_string r ~off:0 ~len:20 in
  Alcotest.(check bool) "violation recorded" true
    (count_violations c (function P.Read_unfenced_after_crash _ -> true | _ -> false) > 0)

let test_fenced_data_reads_clean_after_crash () =
  let r, c = checked () in
  R.write_string r ~off:0 "properly persisted";
  R.persist r ~tid:0 ~off:0 ~len:18;
  R.crash ~evict_dirty:1.0 r;
  let (_ : string) = R.read_string r ~off:0 ~len:18 in
  Alcotest.(check int) "no violations" 0 (List.length (P.violations c))

let test_recovery_scan_suppresses_rule () =
  let r, c = checked () in
  R.write_string r ~off:0 "unfenced";
  R.crash ~evict_dirty:1.0 r;
  P.set_recovery_scan c true;
  let (_ : string) = R.read_string r ~off:0 ~len:8 in
  P.set_recovery_scan c false;
  Alcotest.(check int) "scan reads are sound by contract" 0 (List.length (P.violations c))

(* ---- rule: flush/store race ---- *)

let test_flush_store_race_detected () =
  let r, c = checked () in
  R.write_string r ~off:0 "v1";
  R.writeback r ~tid:0 ~off:0 ~len:2;
  (* bug: mutate the line while its CLWB is in flight, then fence
     without re-issuing the write-back — the fence may commit v1 *)
  R.write_string r ~off:0 "v2";
  Alcotest.(check int) "provisional until the fence" 0 (List.length (P.violations c));
  R.sfence r ~tid:0;
  Alcotest.(check bool) "race recorded at drain" true
    (count_violations c (function P.Store_flush_race _ -> true | _ -> false) > 0)

let test_rewriteback_before_fence_is_clean () =
  let r, c = checked () in
  (* Mnemosyne-style: store, CLWB, store the same line again, CLWB
     again, one fence — the second CLWB restores coverage *)
  R.write_string r ~off:0 "v1";
  R.writeback r ~tid:0 ~off:0 ~len:2;
  R.write_string r ~off:0 "v2";
  R.writeback r ~tid:0 ~off:0 ~len:2;
  R.sfence r ~tid:0;
  Alcotest.(check int) "re-covered line is clean" 0 (List.length (P.violations c));
  Alcotest.(check int) "but the duplicate flush is linted" 1 (lint_count c P.Duplicate_flush)

(* Montage's buffered answer to the race: a store over a queued line
   that is re-registered with a persist buffer before the fence is
   clean — the new content's flush contract is open again. *)
let test_buffer_push_restores_coverage () =
  let r, c = checked () in
  R.write_string r ~off:0 "v1";
  R.writeback r ~tid:0 ~off:0 ~len:2;
  (* a same-epoch in-place rewrite racing the drain's fence *)
  R.write_string r ~off:0 "v2";
  P.on_buffer_push c ~tid:1 ~epoch:5 ~off:0 ~len:2;
  R.sfence r ~tid:0;
  Alcotest.(check int) "push-covered store is clean" 0 (List.length (P.violations c))

(* ...and the responsibility really transfers: the push-clear does not
   weaken the retirement rule — a re-registered range that then never
   reaches media misses its two-epoch deadline.  The race is forgiven,
   not forgotten. *)
let test_buffer_push_transfers_to_retirement_rule () =
  let r, c = checked () in
  R.write_string r ~off:0 "v1";
  R.writeback r ~tid:0 ~off:0 ~len:2;
  R.write_string r ~off:0 "v2";
  P.on_buffer_push c ~tid:1 ~epoch:5 ~off:0 ~len:2;
  P.on_epoch_advance c ~epoch:6;
  P.on_epoch_advance c ~epoch:7;
  Alcotest.(check bool) "unflushed re-registration caught at retirement" true
    (count_violations c (function P.Epoch_retired_unflushed _ -> true | _ -> false) > 0)

let test_store_after_fence_is_clean () =
  let r, c = checked () in
  R.write_string r ~off:0 "v1";
  R.persist r ~tid:0 ~off:0 ~len:2;
  R.write_string r ~off:0 "v2";
  Alcotest.(check int) "no violations" 0 (List.length (P.violations c))

let test_enforce_mode_raises () =
  let r, _c = checked ~mode:P.Enforce () in
  R.write_string r ~off:0 "v1";
  R.writeback r ~tid:0 ~off:0 ~len:2;
  R.write_string r ~off:0 "v2";
  let raised =
    try
      R.sfence r ~tid:0;
      false
    with P.Violation (P.Store_flush_race _) -> true
  in
  Alcotest.(check bool) "Enforce raises at the detection point" true raised

(* ---- rule: epoch-retired-unflushed (driven through the hooks) ---- *)

let test_epoch_retired_unflushed () =
  let c = P.create ~capacity:4096 ~max_threads:2 () in
  (* a payload range registered in epoch 5 that never reaches media *)
  P.on_buffer_push c ~tid:0 ~epoch:5 ~off:0 ~len:64;
  P.on_epoch_advance c ~epoch:6;
  Alcotest.(check int) "deadline not yet passed" 0 (List.length (P.violations c));
  P.on_epoch_advance c ~epoch:7;
  Alcotest.(check bool) "missed two-epoch deadline" true
    (count_violations c (function P.Epoch_retired_unflushed _ -> true | _ -> false) > 0)

let test_epoch_obligation_satisfied_by_drain () =
  let c = P.create ~capacity:4096 ~max_threads:2 () in
  P.on_buffer_push c ~tid:0 ~epoch:5 ~off:0 ~len:64;
  P.on_writeback c ~tid:1 ~off:0 ~len:64;
  P.on_drain c ~tid:1;
  P.on_epoch_advance c ~epoch:6;
  P.on_epoch_advance c ~epoch:7;
  Alcotest.(check int) "flushed range retires clean" 0 (List.length (P.violations c))

(* ---- rule: epoch-clock regression ---- *)

let test_epoch_clock_regression () =
  let c = P.create ~capacity:4096 ~max_threads:2 () in
  P.on_epoch_advance c ~epoch:6;
  P.on_epoch_advance c ~epoch:7;
  Alcotest.(check int) "monotone advances pass" 0 (List.length (P.violations c));
  (* a losing nonblocking helper must never report its stale tick *)
  P.on_epoch_advance c ~epoch:6;
  Alcotest.(check bool) "stale advance flagged" true
    (count_violations c (function P.Epoch_clock_regression _ -> true | _ -> false) > 0);
  P.clear_violations c;
  (* recovery legally resumes at a lower clock: crash resets the mark *)
  P.on_crash c ~injected:[];
  P.on_epoch_advance c ~epoch:3;
  Alcotest.(check int) "post-crash restart is clean" 0 (List.length (P.violations c))

(* ---- rule: linearize-epoch-mismatch ---- *)

let test_linearize_epoch_mismatch () =
  let c = P.create ~capacity:4096 ~max_threads:2 () in
  P.on_linearize c ~epoch:3 ~clock:3 ~success:true;
  P.on_linearize c ~epoch:3 ~clock:4 ~success:false;
  Alcotest.(check int) "matching or failed decisions pass" 0 (List.length (P.violations c));
  P.on_linearize c ~epoch:3 ~clock:4 ~success:true;
  Alcotest.(check bool) "success against wrong clock flagged" true
    (count_violations c (function P.Linearize_epoch_mismatch _ -> true | _ -> false) > 0)

(* ---- rule: declared contracts (expect_fenced) ---- *)

let test_expect_fenced_contract () =
  let r, c = checked () in
  R.write_string r ~off:0 "payload";
  R.persist r ~tid:0 ~off:0 ~len:7;
  R.expect_fenced r ~what:"test: persisted range" ~off:0 ~len:7;
  Alcotest.(check int) "fenced range passes" 0 (List.length (P.violations c));
  R.write_string r ~off:128 "dirty";
  R.expect_fenced r ~what:"test: dirty range" ~off:128 ~len:5;
  Alcotest.(check bool) "dirty range breaks the contract" true
    (count_violations c (function P.Contract _ -> true | _ -> false) > 0)

let test_expect_fenced_without_checker_is_noop () =
  let r = make_region () in
  R.write_string r ~off:0 "dirty";
  R.expect_fenced r ~what:"no checker attached" ~off:0 ~len:5;
  Alcotest.(check bool) "no checker" true (R.checker r = None)

(* ---- performance lints ---- *)

let test_lints_counted () =
  let r, c = checked () in
  (* clean-writeback: CLWB of a line never stored to *)
  R.writeback r ~tid:0 ~off:128 ~len:8;
  (* duplicate-flush: same line queued twice in one fence interval *)
  R.write_string r ~off:0 "x";
  R.writeback r ~tid:0 ~off:0 ~len:1;
  R.writeback r ~tid:0 ~off:0 ~len:1;
  R.sfence r ~tid:0;
  (* empty-fence: nothing queued *)
  R.sfence r ~tid:0;
  Alcotest.(check int) "clean writeback" 1 (lint_count c P.Clean_writeback);
  Alcotest.(check int) "duplicate flush" 1 (lint_count c P.Duplicate_flush);
  Alcotest.(check int) "empty fence" 1 (lint_count c P.Empty_fence);
  Alcotest.(check int) "total" 3 (P.lint_total c);
  Alcotest.(check int) "lints are never violations" 0 (List.length (P.violations c));
  Alcotest.(check bool) "summary renders" true (String.length (P.summary c) > 0)

(* ---- bounded crash-state enumeration ---- *)

(* valid-flag protocol on two lines: flag at 64 must imply data at 0 *)
let flag_predicate m = Bytes.get m 64 = '\000' || Bytes.get m 0 = 'D'

let test_explore_finds_missing_fence () =
  let r, c = checked ~log_events:true () in
  (* bug: data and flag written back under a single fence — a crash
     where only the flag's CLWB completed exposes the torn state *)
  R.write_string r ~off:0 "DATA";
  R.set_u8 r ~off:64 1;
  R.writeback r ~tid:0 ~off:0 ~len:4;
  R.writeback r ~tid:0 ~off:64 ~len:1;
  R.sfence r ~tid:0;
  let report = P.explore c flag_predicate in
  Alcotest.(check bool) "states explored" true (report.P.states > 0);
  Alcotest.(check bool) "torn state found" true (report.P.failures > 0);
  Alcotest.(check bool) "failure described" true (report.P.first_failure <> None)

let test_explore_passes_ordered_protocol () =
  let r, c = checked ~log_events:true () in
  (* correct: persist data, then persist flag — no reachable crash
     state has the flag without the data *)
  R.write_string r ~off:0 "DATA";
  R.persist r ~tid:0 ~off:0 ~len:4;
  R.set_u8 r ~off:64 1;
  R.persist r ~tid:0 ~off:64 ~len:1;
  let report = P.explore c flag_predicate in
  Alcotest.(check bool) "states explored" true (report.P.states > 0);
  Alcotest.(check int) "no failing state" 0 report.P.failures

let test_explore_requires_event_log () =
  let _, c = checked () in
  let raised = try ignore (P.explore c (fun _ -> true)); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "explore without log rejected" true raised

(* ---- stock structures run clean under Enforce ---- *)

let testing_cfg = { Cfg.testing with max_threads = 4 }

let test_montage_map_clean_under_enforce () =
  Alcotest.(check bool) "testing config enforces" true (testing_cfg.Cfg.pcheck = Cfg.Pcheck_enforce);
  let region = R.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 24) () in
  let esys = E.create ~config:testing_cfg region in
  let m = Pstructs.Mhashmap.create ~buckets:64 esys in
  for i = 0 to 49 do
    ignore (Pstructs.Mhashmap.put m ~tid:0 (Printf.sprintf "k%d" i) (Printf.sprintf "v%d" i))
  done;
  E.sync esys ~tid:0;
  ignore (Pstructs.Mhashmap.put m ~tid:0 "late" "update");
  Nvm.Region.crash region;
  let esys2, payloads = E.recover ~config:testing_cfg region in
  let m2 = Pstructs.Mhashmap.recover ~buckets:64 esys2 payloads in
  Alcotest.(check int) "synced contents recovered" 50 (Pstructs.Mhashmap.size m2);
  match R.checker region with
  | None -> Alcotest.fail "testing config should have attached a checker"
  | Some c -> Alcotest.(check int) "no violations" 0 (List.length (P.violations c))

(* Nonblocking advance: a helper thread publishes the owner's ring.
   The two-epoch durability obligation ([Epoch_retired_unflushed])
   tracks the line, not the thread — write-backs performed by the
   helping advancer on the owner's behalf must satisfy it, with no
   false violation and the owner's data durable after the tick. *)
let test_helper_persists_for_owner_clean () =
  let cfg = { testing_cfg with Cfg.nb_advance = true; drain_on_end_op = false } in
  let region = R.create ~latency:Nvm.Latency.zero ~max_threads:8 ~capacity:(1 lsl 22) () in
  let esys = E.create ~config:cfg region in
  let m = Pstructs.Mhashmap.create ~buckets:16 esys in
  for i = 0 to 9 do
    ignore (Pstructs.Mhashmap.put m ~tid:0 (Printf.sprintf "k%d" i) (string_of_int i))
  done;
  (* tid 0 leaves its records buffered in the ring; tid 1 alone drives
     the clock two ticks, claiming and fencing tid 0's publication *)
  E.advance_epoch esys ~tid:1;
  E.advance_epoch esys ~tid:1;
  R.crash region;
  let esys2, payloads = E.recover ~config:cfg region in
  let m2 = Pstructs.Mhashmap.recover ~buckets:16 esys2 payloads in
  Alcotest.(check int) "owner's writes durable via the helper" 10 (Pstructs.Mhashmap.size m2);
  match R.checker region with
  | None -> Alcotest.fail "checker missing"
  | Some c ->
      Alcotest.(check int) "no retired-unflushed (or other) violations" 0
        (List.length (P.violations c))

let test_friedman_queue_clean_under_enforce () =
  let r = make_region ~capacity:(1 lsl 22) () in
  let (_ : P.t) = R.enable_pcheck ~mode:P.Enforce r in
  let pm = Baselines.Pmem.create r in
  let q = Baselines.Friedman_queue.create pm in
  for i = 0 to 19 do
    Baselines.Friedman_queue.enqueue q ~tid:0 (Printf.sprintf "v%d" i)
  done;
  ignore (Baselines.Friedman_queue.dequeue q ~tid:0);
  ignore (Baselines.Friedman_queue.dequeue q ~tid:0);
  R.crash r;
  let pm2 = Baselines.Pmem.create r in
  let q2 = Baselines.Friedman_queue.recover pm2 in
  Alcotest.(check (option string)) "survivors intact" (Some "v2")
    (Baselines.Friedman_queue.dequeue q2 ~tid:0);
  match R.checker r with
  | None -> Alcotest.fail "checker missing"
  | Some c -> Alcotest.(check int) "no violations" 0 (List.length (P.violations c))

let test_nvtraverse_map_clean_under_enforce () =
  let r = make_region ~capacity:(1 lsl 22) () in
  let (_ : P.t) = R.enable_pcheck ~mode:P.Enforce r in
  let pm = Baselines.Pmem.create r in
  let m = Baselines.Nvtraverse_map.create ~buckets:64 pm in
  for i = 0 to 49 do
    ignore (Baselines.Nvtraverse_map.put m ~tid:0 (Printf.sprintf "k%d" i) (string_of_int i))
  done;
  Alcotest.(check (option string)) "get" (Some "7") (Baselines.Nvtraverse_map.get m ~tid:0 "k7");
  ignore (Baselines.Nvtraverse_map.remove m ~tid:0 "k7");
  match R.checker r with
  | None -> Alcotest.fail "checker missing"
  | Some c -> Alcotest.(check int) "no violations" 0 (List.length (P.violations c))

let () =
  Alcotest.run "pcheck"
    [
      ( "read-after-crash",
        [
          Alcotest.test_case "missing flush detected" `Quick test_missing_flush_detected;
          Alcotest.test_case "fenced data clean" `Quick test_fenced_data_reads_clean_after_crash;
          Alcotest.test_case "recovery scan suppression" `Quick test_recovery_scan_suppresses_rule;
        ] );
      ( "flush-store-race",
        [
          Alcotest.test_case "race detected" `Quick test_flush_store_race_detected;
          Alcotest.test_case "re-writeback is clean" `Quick test_rewriteback_before_fence_is_clean;
          Alcotest.test_case "buffer push restores coverage" `Quick
            test_buffer_push_restores_coverage;
          Alcotest.test_case "push transfers to retirement rule" `Quick
            test_buffer_push_transfers_to_retirement_rule;
          Alcotest.test_case "fenced store clean" `Quick test_store_after_fence_is_clean;
          Alcotest.test_case "enforce raises" `Quick test_enforce_mode_raises;
        ] );
      ( "epoch-obligations",
        [
          Alcotest.test_case "retired unflushed" `Quick test_epoch_retired_unflushed;
          Alcotest.test_case "satisfied by drain" `Quick test_epoch_obligation_satisfied_by_drain;
          Alcotest.test_case "linearize mismatch" `Quick test_linearize_epoch_mismatch;
          Alcotest.test_case "clock regression" `Quick test_epoch_clock_regression;
        ] );
      ( "contracts",
        [
          Alcotest.test_case "expect_fenced" `Quick test_expect_fenced_contract;
          Alcotest.test_case "no checker no-op" `Quick test_expect_fenced_without_checker_is_noop;
        ] );
      ("lints", [ Alcotest.test_case "counted per site" `Quick test_lints_counted ]);
      ( "explore",
        [
          Alcotest.test_case "finds missing fence" `Quick test_explore_finds_missing_fence;
          Alcotest.test_case "ordered protocol passes" `Quick test_explore_passes_ordered_protocol;
          Alcotest.test_case "requires event log" `Quick test_explore_requires_event_log;
        ] );
      ( "stock-structures",
        [
          Alcotest.test_case "montage map" `Quick test_montage_map_clean_under_enforce;
          Alcotest.test_case "helper persists for owner" `Quick
            test_helper_persists_for_owner_clean;
          Alcotest.test_case "friedman queue" `Quick test_friedman_queue_clean_under_enforce;
          Alcotest.test_case "nvtraverse map" `Quick test_nvtraverse_map_clean_under_enforce;
        ] );
    ]
